"""Attack models: the DoS flooders of Sections 3 and 7, and packet forgery.

* :class:`RandomPKeyFlooder` — the paper's main availability threat: "an
  attacker on a compromised InfiniBand node can easily trigger a DoS attack
  by flooding packets with random partition keys … Destination nodes will
  block those packets … However, they have already gone through the
  network."  Generates MTU packets back-to-back at full link speed toward
  random destinations, with random *invalid* P_Keys (or a valid one for the
  Section-7 variant that defeats any ingress filter).
* :class:`SMTrapFlooder` — Section 7's "DoS attack on the SM by dumping
  management messages and trap messages".
* :func:`forge_packet` — craft a packet using captured plaintext keys only
  (valid CRC, no MAC secret): the Table 3 attacker.  Used by
  :mod:`repro.core.threats` to show stock IBA accepting it and the
  ICRC-as-MAC fabric rejecting it with probability ≈ 1 - 2^-30.
"""

from __future__ import annotations

import random

from repro.iba import crc as ibacrc
from repro.iba.hca import HCA
from repro.iba.keys import PKey, QKey
from repro.iba.packet import DataPacket, TrapMAD
from repro.iba.qp import QueuePair
from repro.iba.types import LID, QPN, ServiceType, TrafficClass
from repro.sim.counters import CounterRegistry
from repro.sim.engine import Engine, PS_PER_US
from repro.sim.traffic import make_ud_packet


def random_invalid_pkey(rng: random.Random, valid_indices: set[int]) -> PKey:
    """A uniformly random P_Key whose index is not in *valid_indices*."""
    while True:
        idx = rng.randrange(1, 0x7FFF)  # avoid 0 and the default partition
        if idx not in valid_indices:
            member = rng.randrange(2)
            return PKey(idx | (PKey.FULL_MEMBER_BIT if member else 0))


class RandomPKeyFlooder:
    """Full-line-rate flooder active during the given attack windows."""

    def __init__(
        self,
        engine: Engine,
        hca: HCA,
        qp: QueuePair,
        target_lids: list[LID],
        valid_indices: set[int],
        mtu_bytes: int,
        byte_time_ps: int,
        rng: random.Random,
        windows: list[tuple[int, int]],
        classes: tuple[str, ...] = ("realtime", "best_effort"),
        valid_pkey: PKey | None = None,
        backlog: int = 32,
        dest_strategy: str = "spray",
        registry: CounterRegistry | None = None,
        ramp_from_ps: int = 0,
        ramp_ps: int = 0,
    ) -> None:
        if not target_lids:
            raise ValueError("flooder needs targets")
        self.engine = engine
        self.hca = hca
        self.qp = qp
        self.targets = [t for t in target_lids if int(t) != int(hca.lid)]
        self.valid_indices = valid_indices
        self.mtu_bytes = mtu_bytes
        self.rng = rng
        self.windows = windows
        self.classes = [TrafficClass(c) for c in classes]
        self.valid_pkey = valid_pkey  #: Section-7 variant: flood with this valid key.
        from repro.iba.packet import LOCAL_UD_OVERHEAD

        self.tick_ps = (mtu_bytes + LOCAL_UD_OVERHEAD) * byte_time_ps
        #: how many frames the flooder keeps staged per class so its link is
        #: driven at 100% whenever the fabric grants credits.
        self.backlog = backlog
        if dest_strategy not in ("spray", "victim"):
            raise ValueError("dest_strategy is 'spray' or 'victim'")
        #: 'spray' = new random destination per packet (Figure 1);
        #: 'victim' = one random node hammered for a whole attack window
        #: ("allow the attacker to choose random nodes to attack").
        self.dest_strategy = dest_strategy
        self._window_victim = self.targets[0]
        self.registry = registry if registry is not None else CounterRegistry()
        self.generated = self.registry.counter(f"attacker.{int(hca.lid)}.generated")
        self._class_rr = 0
        #: Coordinated ramp: before ``ramp_from_ps`` the flooder idles; over
        #: the next ``ramp_ps`` its rate climbs linearly to full line rate
        #: (gap stretching).  ``ramp_ps = 0`` keeps the legacy square-wave
        #: on/off behaviour.
        self.ramp_from_ps = max(0, int(ramp_from_ps))
        self.ramp_ps = max(0, int(ramp_ps))

    def _rate_fraction(self) -> float:
        """Fraction of line rate the ramp allows right now (0..1]."""
        if self.ramp_ps <= 0:
            return 1.0
        elapsed = self.engine.now - self.ramp_from_ps
        if elapsed >= self.ramp_ps:
            return 1.0
        # floor at 5% so the tick chain keeps advancing during the ramp-in
        return max(elapsed / self.ramp_ps, 0.05)

    def start(self) -> None:
        for start, end in self.windows:
            self.engine.schedule_at(max(start, 0), self._begin_window, end)

    def _begin_window(self, window_end: int) -> None:
        self._window_victim = self.rng.choice(self.targets)
        self._tick(window_end)

    def _tick(self, window_end: int) -> None:
        if self.engine.now >= window_end:
            return
        if self.engine.now < self.ramp_from_ps:
            # coordinated ramp hasn't begun: stay silent until it does
            self.engine.schedule_at(self.ramp_from_ps, self._tick, window_end)
            return
        # Emit at line rate, but never let the local queue grow beyond a
        # couple of frames — a NIC can't transmit faster than the wire.
        tclass = self.classes[self._class_rr % len(self.classes)]
        self._class_rr += 1
        if self.hca.queue_depth(tclass) < self.backlog:
            if self.dest_strategy == "victim":
                dst = self._window_victim
            else:
                dst = self.rng.choice(self.targets)
            pkey = self.valid_pkey or random_invalid_pkey(self.rng, self.valid_indices)
            pkt = make_ud_packet(
                self.hca, self.qp, dst, QPN(1), QKey(self.rng.randrange(1, 2**31)),
                pkey, tclass, self.mtu_bytes, is_attack=True,
            )
            pkt.bth.reserved_auth = 0
            self.hca.submit(pkt)
            self.generated.inc()
        gap = self.tick_ps // len(self.classes)
        frac = self._rate_fraction()
        if frac < 1.0:
            gap = round(gap / frac)
        self.engine.schedule_pooled(gap, self._tick, window_end)


class SMTrapFlooder:
    """Floods the Subnet Manager's trap queue with bogus violation notices."""

    def __init__(
        self,
        engine: Engine,
        sm,
        reporter: LID,
        rate_per_us: float,
        duration_us: float,
        rng: random.Random,
        registry: CounterRegistry | None = None,
    ) -> None:
        self.engine = engine
        self.sm = sm
        self.reporter = reporter
        self.gap_ps = round(PS_PER_US / rate_per_us)
        self.stop_at = round(duration_us * PS_PER_US)
        self.rng = rng
        self.registry = registry if registry is not None else CounterRegistry()
        self.sent = self.registry.counter(f"attacker.{int(reporter)}.traps_sent")

    def start(self) -> None:
        self.engine.schedule_pooled(self.gap_ps, self._tick)

    def _tick(self) -> None:
        if self.engine.now >= self.stop_at:
            return
        self.sm.submit_trap(
            TrapMAD(
                reporter=self.reporter,
                offender=LID(self.rng.randrange(1, 0xFF)),
                bad_pkey=PKey(self.rng.randrange(1, 0x7FFF)),
                t_created=self.engine.now,
            )
        )
        self.sent.inc()
        self.engine.schedule_pooled(self.gap_ps, self._tick)


def forge_packet(
    attacker: HCA,
    attacker_qp: QueuePair,
    dst_lid: LID,
    dst_qpn: QPN,
    captured_pkey: PKey,
    captured_qkey: QKey | None,
    mtu_bytes: int,
    guessed_tag: int | None = None,
    auth_fn_id: int = 0,
) -> DataPacket:
    """Craft the Table 3 attack packet from captured plaintext keys.

    The forger can always compute a correct CRC-32 (it is keyless), so the
    packet is perfectly valid to stock IBA.  Against the MAC fabric it can
    only write a *guessed* 32-bit tag (``guessed_tag``) and set the auth
    selector — succeeding with probability ~2^-30.
    """
    pkt = make_ud_packet(
        attacker, attacker_qp, dst_lid, dst_qpn,
        captured_qkey or QKey(0xDEADBEEF), captured_pkey,
        TrafficClass.BEST_EFFORT, mtu_bytes, is_attack=True,
    )
    if guessed_tag is None:
        pkt.bth.reserved_auth = 0
        pkt.icrc = ibacrc.icrc(pkt)  # VCRC unchecked in-fabric (see auth.py)
    else:
        pkt.bth.reserved_auth = auth_fn_id
        pkt.icrc = guessed_tag & 0xFFFFFFFF
    return pkt


def inject_raw(hca: HCA, packet: DataPacket) -> None:
    """Push a pre-built (possibly forged) packet into an HCA send queue,
    bypassing the node's legitimate AuthService — the attacker controls its
    own NIC."""
    packet.t_created = hca.engine.now
    hca._enqueue(packet)


def make_attack_windows(
    sim_time_ps: int,
    duty_cycle: float,
    window_ps: int,
    rng: random.Random,
    start_ps: int = 0,
) -> list[tuple[int, int]]:
    """Attack on/off schedule with the requested duty cycle.

    duty 1.0 → one window covering [start, end of run] (Figure 1).
    Otherwise the span after ``start_ps`` is divided into periods of
    window/duty and each period contains one attack window at a random
    offset (Figure 5's "probability of DoS attack … 1%").  ``start_ps``
    delays the whole schedule — the mid-run "attack begins at t" scenario;
    the rng draw sequence for ``start_ps = 0`` is unchanged.
    """
    if duty_cycle <= 0:
        return []
    start_ps = max(0, int(start_ps))
    if start_ps >= sim_time_ps:
        return []
    if duty_cycle >= 1.0:
        return [(start_ps, sim_time_ps)]
    period = round(window_ps / duty_cycle)
    windows = []
    t = start_ps
    while t + window_ps <= sim_time_ps:
        offset = rng.randrange(max(1, period - window_ps))
        start = t + offset
        end = min(start + window_ps, sim_time_ps)
        if start < sim_time_ps:
            windows.append((start, end))
        t += period
    return windows
