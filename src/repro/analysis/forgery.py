"""Forgery-probability models — Table 4's security column and the Section-7
strength/performance trade-off.

The paper's reasoning, reproduced as executable functions:

* CRC: keyless and GF(2)-linear → an adversary can always fix the checksum;
  forgery probability "is virtually one".
* HMAC-X: no better attack than guessing the tag is known, so a tag of *t*
  bits is forged with probability ~2^-t; the original 128-/160-bit digests
  give 2^-120/2^-160 [the paper quotes 2^-120 via [1]], and truncation to
  the 32-bit ICRC field scales the strength to ~2^-32 ("We assume that the
  security strength … is proportional to their authentication tag sizes").
* UMAC-2/4: *provable* 2^-30 per forgery attempt with a 32-bit tag.
* Section 7's "digest a small part of the message" trade-off: if only a
  fraction of the message is covered, an adversary who modifies an
  uncovered byte succeeds with probability 1; modifying covered bytes still
  faces the tag bound.  Expected forgery probability interpolates.
"""

from __future__ import annotations


def forgery_probability(algorithm: str) -> float:
    """Table 4's forgery column by algorithm name."""
    table = {
        "crc": 1.0,
        "hmac-sha1": 2.0**-32,
        "hmac-md5": 2.0**-32,
        "umac": 2.0**-30,
        "umac-2/4": 2.0**-30,
    }
    key = algorithm.lower()
    if key not in table:
        raise KeyError(f"unknown algorithm {algorithm!r}")
    return table[key]


def truncated_forgery_probability(full_tag_bits: int, kept_bits: int) -> float:
    """Guessing probability after truncating a *full_tag_bits* MAC to
    *kept_bits* (the proportional-strength assumption of Section 5.2)."""
    if not 0 < kept_bits <= full_tag_bits:
        raise ValueError("kept bits must be in (0, full_tag_bits]")
    return 2.0**-kept_bits


def attempts_for_confidence(tag_bits: int, confidence: float = 0.5) -> float:
    """Expected number of online forgery attempts to succeed with the given
    confidence against a *tag_bits* tag — why even 2^-30 is plenty when each
    attempt costs a fabric round trip and bumps a violation counter."""
    import math

    if not 0 < confidence < 1:
        raise ValueError("confidence in (0,1)")
    p = 2.0**-tag_bits
    return math.log(1 - confidence) / math.log(1 - p)


def partial_digest_forgery(
    covered_fraction: float,
    tag_bits: int = 32,
    tamper_target_uniform: bool = True,
) -> float:
    """Section 7's speed-for-strength trade: MAC only ``covered_fraction``
    of the message.

    With a uniformly-placed single-byte tamper, the attack lands in the
    uncovered region (instant success) with probability
    ``1 - covered_fraction``, else must beat the tag.  The paper's remark
    "This will increase forgery probability, but it will be better than
    CRC" is the returned value sitting strictly between 2^-tag and 1 for
    any 0 < covered_fraction < 1.
    """
    if not 0.0 <= covered_fraction <= 1.0:
        raise ValueError("covered_fraction in [0,1]")
    guess = 2.0**-tag_bits
    if not tamper_target_uniform:
        # adversary chooses where to tamper: any uncovered byte wins outright
        return 1.0 if covered_fraction < 1.0 else guess
    return (1.0 - covered_fraction) * 1.0 + covered_fraction * guess


def crc_is_forgeable() -> bool:
    """Constructive demonstration that CRC-32 offers no authenticity:
    flip message bits and fix the checksum using linearity, with no key.

    Returns True when the forged (message', crc') verifies — it always
    does; the unit tests assert this, and it is the premise of the paper.
    """
    from repro.crypto.crc32 import crc32

    original = b"transfer $100 to alice.."
    tampered = b"transfer $999 to mallory"
    assert len(original) == len(tampered)
    # Linearity: crc(t) = crc(o) ^ crc(o ^ t ^ 0) ^ crc(0) over equal lengths.
    zeros = bytes(len(original))
    delta = bytes(a ^ b for a, b in zip(original, tampered))
    forged_crc = crc32(tampered)
    predicted = crc32(original) ^ crc32(delta) ^ crc32(zeros)
    return predicted == forged_crc
