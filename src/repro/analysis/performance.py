"""Table 4 — time complexity of the candidate authentication functions.

The paper collects published implementation results, normalizes them to a
common 350 MHz clock (assuming throughput proportional to clock), and
derives Gbps:

=============  ===========  =========  ================
algorithm      cycles/byte  Gbits/sec  forgery prob.
=============  ===========  =========  ================
CRC            0.25         11.2       1
HMAC-SHA1      12.6         0.22       ~2^-32
HMAC-MD5       5.3          0.53       ~2^-32
UMAC-2/4       0.7          4.00       2^-30
=============  ===========  =========  ================

Provenance of the raw numbers (Section 5.2):

* CRC: a commercial generator does 10 Gbps at 312 MHz [33] → 0.25 c/B.
* SHA1: 12.6 c/B on a 250 MHz Pentium II [2] (upper bound for HMAC-SHA1).
* HMAC-MD5: Adcock's estimate of 5.3 c/B from Bosselaers' Pentium MD5 [1,3].
* UMAC: 0.7 c/B on a 700 MHz Pentium III with MMX [21].

This module reproduces that arithmetic exactly (:data:`TABLE4`), provides
the conversion helpers, and models the Section-6 line-rate argument: at
200 MHz UMAC generates 1.4 bytes/cycle ≥ the 2.5 Gbps 1x link needs, so one
extra pipeline stage suffices.

It also measures our *actual pure-Python implementations*
(:func:`measure_implementations`) — not to match 1999 silicon, but to check
the *ordering* (CRC and UMAC-class fastest, HMAC-SHA1 slowest), which is
the property the paper's argument rests on.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

#: the common clock the paper normalizes Table 4 to.
TABLE4_CLOCK_MHZ = 350.0


@dataclass(frozen=True)
class MacPerformance:
    """One Table 4 row."""

    algorithm: str
    cycles_per_byte: float
    gbps: float
    forgery_probability: float
    source_clock_mhz: float  #: clock of the published measurement.

    def gbps_at(self, clock_mhz: float) -> float:
        """Throughput at another clock (proportional-to-clock assumption)."""
        return gbps_at_clock(self.cycles_per_byte, clock_mhz)

    def bytes_per_cycle(self) -> float:
        return 1.0 / self.cycles_per_byte


def gbps_at_clock(cycles_per_byte: float, clock_mhz: float) -> float:
    """Gbit/s achieved by an engine of *cycles_per_byte* at *clock_mhz*."""
    if cycles_per_byte <= 0:
        raise ValueError("cycles/byte must be positive")
    bytes_per_sec = clock_mhz * 1e6 / cycles_per_byte
    return bytes_per_sec * 8 / 1e9


def normalize_cycles_per_byte(
    throughput_gbps: float, clock_mhz: float
) -> float:
    """Invert a published (Gbps @ clock) measurement into cycles/byte —
    e.g. the CRC generator's 10 Gbps at 312 MHz → 0.25 c/B."""
    if throughput_gbps <= 0 or clock_mhz <= 0:
        raise ValueError("throughput and clock must be positive")
    bytes_per_sec = throughput_gbps * 1e9 / 8
    return clock_mhz * 1e6 / bytes_per_sec


#: Table 4 as published (cycles/byte are the paper's normalized figures).
TABLE4: tuple[MacPerformance, ...] = (
    MacPerformance("CRC", 0.25, gbps_at_clock(0.25, TABLE4_CLOCK_MHZ), 1.0, 312.0),
    MacPerformance("HMAC-SHA1", 12.6, gbps_at_clock(12.6, TABLE4_CLOCK_MHZ), 2.0**-32, 250.0),
    MacPerformance("HMAC-MD5", 5.3, gbps_at_clock(5.3, TABLE4_CLOCK_MHZ), 2.0**-32, 250.0),
    MacPerformance("UMAC-2/4", 0.7, gbps_at_clock(0.7, TABLE4_CLOCK_MHZ), 2.0**-30, 700.0),
)


def table4_rows() -> list[dict]:
    """Table 4 rendered to plain dicts (what the benchmark prints)."""
    return [
        {
            "algorithm": row.algorithm,
            "cycles_per_byte": row.cycles_per_byte,
            "gbps": round(row.gbps, 2),
            "forgery_probability": row.forgery_probability,
        }
        for row in TABLE4
    ]


def umac_line_rate_check(
    clock_mhz: float = 200.0, link_gbps: float = 2.5, tolerance: float = 0.9
) -> tuple[float, bool]:
    """Section 6's claim: "UMAC can generate 1.4 bytes per cycle, which means
    that if we use 200MHz, UMAC can authenticate messages at the similar
    speed with IBA."  "Similar speed" — within *tolerance* of the link rate
    (2.29 Gbps vs 2.5 Gbps at the paper's own numbers), absorbed by the one
    extra pipeline stage the paper adds.  Returns (achievable Gbps, ok?)."""
    umac = TABLE4[3]
    achievable = umac.gbps_at(clock_mhz)
    return achievable, achievable >= tolerance * link_gbps


def measure_implementations(message_size: int = 1024, repeats: int = 20) -> dict[str, float]:
    """Wall-clock throughput (MB/s) of this repo's pure-Python primitives.

    Absolute numbers are Python-speed, not silicon-speed; the meaningful
    output is the ordering, which must match Table 4's: CRC fastest,
    then the universal-hash MACs, then HMAC-MD5, then HMAC-SHA1.
    (Table-driven CRC does ~1 table op/byte; UMAC's NH does one multiply-add
    per 8 bytes; MD5/SHA1 run 64/80 compression steps per 64-byte block.)
    """
    from repro.crypto.crc32 import crc32
    from repro.crypto.hmac import hmac_md5, hmac_sha1
    from repro.crypto.umac import UMAC

    msg = bytes(range(256)) * (message_size // 256 + 1)
    msg = msg[:message_size]
    umac = UMAC(b"0123456789abcdef")
    candidates = {
        "CRC": lambda: crc32(msg),
        "UMAC": lambda: umac.hash(msg),  # the per-byte work; pad is per-nonce
        "HMAC-MD5": lambda: hmac_md5(b"k" * 16, msg),
        "HMAC-SHA1": lambda: hmac_sha1(b"k" * 16, msg),
    }
    results = {}
    for name, fn in candidates.items():
        fn()  # warm caches
        start = time.perf_counter()
        for _ in range(repeats):
            fn()
        elapsed = time.perf_counter() - start
        results[name] = message_size * repeats / elapsed / 1e6
    return results
