"""Analytic queueing cross-checks for the simulator's baselines.

The fabric's no-attack operating points should agree with textbook queueing
theory — a strong validity check DESIGN.md calls for:

* a source HCA with Poisson arrivals of fixed-size frames onto an idle link
  is an **M/D/1** queue: mean wait ``W = ρ·S / (2(1-ρ))``;
* an end-to-end path of store-and-forward hops at low load costs roughly
  ``links · (serialization + wire) + switches · routing``.

Tests compare these against measured simulator output within tolerance;
the functions are also useful for sizing experiments (e.g. predicting the
load where queuing diverges).
"""

from __future__ import annotations

from repro.iba.packet import LOCAL_UD_OVERHEAD
from repro.sim.config import SimConfig
from repro.sim.engine import PS_PER_US


def frame_service_time_us(config: SimConfig) -> float:
    """Serialization time of one MTU frame (headers included)."""
    wire_bytes = config.mtu_bytes + LOCAL_UD_OVERHEAD
    return wire_bytes * config.byte_time_ps / PS_PER_US


def md1_wait_us(load: float, service_us: float) -> float:
    """Mean M/D/1 queueing delay (excluding service) at utilization *load*."""
    if not 0.0 <= load < 1.0:
        raise ValueError("M/D/1 requires load in [0, 1)")
    return load * service_us / (2.0 * (1.0 - load))


def source_queuing_estimate_us(config: SimConfig) -> float:
    """Expected HCA send-queue wait at the configured loads (both classes
    share the one injection link, so utilization is their sum)."""
    load = 0.0
    if config.enable_best_effort:
        load += config.best_effort_load
    if config.enable_realtime:
        load += config.realtime_load
    return md1_wait_us(load, frame_service_time_us(config))


def path_latency_estimate_us(config: SimConfig, switch_hops: int) -> float:
    """Unloaded end-to-end latency across *switch_hops* switches.

    Links traversed = switch_hops + 1 (HCA→first switch … last switch→HCA);
    each is a full store-and-forward serialization plus wire delay, and each
    switch adds its routing-pipeline delay.  Receive-side processing is
    added once.
    """
    if switch_hops < 1:
        raise ValueError("a path crosses at least the ingress switch")
    links = switch_hops + 1
    ser = frame_service_time_us(config)
    wire = config.wire_delay_ns / 1000.0
    routing = config.switch_routing_delay_ns / 1000.0
    processing = config.hca_processing_delay_ns / 1000.0
    return links * (ser + wire) + switch_hops * routing + processing


def mean_switch_hops(width: int, height: int) -> float:
    """Average XY switch-hop count over distinct uniform random pairs
    (|dx| + |dy| + 1, as in :func:`repro.iba.topology.path_length`)."""
    n = width * height
    total = 0
    pairs = 0
    for sx in range(width):
        for sy in range(height):
            for dx in range(width):
                for dy in range(height):
                    if (sx, sy) == (dx, dy):
                        continue
                    total += abs(sx - dx) + abs(sy - dy) + 1
                    pairs += 1
    return total / pairs


def saturation_load(width: int, height: int) -> float:
    """Per-node injection (fraction of link bandwidth) at which the mesh's
    bisection saturates under uniform random traffic — the knee the Figure
    5/6 'input load' scale is calibrated against.

    Crossing traffic per direction ≈ (n/2)·λ·(n/2)/(n-1) spread over
    min(width, height) bisection links.
    """
    n = width * height
    half = n / 2.0
    links = min(width, height)
    crossing_per_lambda = half * (half / (n - 1))
    return links / crossing_per_lambda
