"""Security-processor offload model — paper Section 7, reference [39].

"[39] recently proposed a security processor which can encrypt/decrypt at
30 to 70 Gbps.  Even though implementing the security processor in CA is
not easy, its speed is comparable to IBA with regard to speed."

This module turns that remark into numbers: given an offload engine's
throughput range and per-packet fixed costs, does the channel adapter keep
IBA line rate for each link width, and what per-packet latency does the
MAC stage add?
"""

from __future__ import annotations

from dataclasses import dataclass

#: IBA link widths (Gbps, signalling rate × 0.8 data rate already applied
#: by the paper's convention of quoting 2.5 Gbps for 1x).
IBA_LINK_GBPS = {"1x": 2.5, "4x": 10.0, "12x": 30.0}

#: the cited engine's range.
HODJAT_MIN_GBPS = 30.0
HODJAT_MAX_GBPS = 70.0


@dataclass(frozen=True)
class SecurityProcessor:
    """An inline MAC/cipher engine attached to the CA pipeline."""

    throughput_gbps: float
    #: fixed per-packet overhead (setup, key fetch, tag writeback).
    per_packet_ns: float = 50.0

    def __post_init__(self) -> None:
        if self.throughput_gbps <= 0:
            raise ValueError("throughput must be positive")
        if self.per_packet_ns < 0:
            raise ValueError("per-packet cost cannot be negative")

    def packet_latency_ns(self, wire_bytes: int) -> float:
        """Time to run one packet through the engine."""
        return self.per_packet_ns + wire_bytes * 8 / self.throughput_gbps

    def effective_gbps(self, wire_bytes: int) -> float:
        """Sustained throughput including the per-packet fixed cost."""
        return wire_bytes * 8 / self.packet_latency_ns(wire_bytes)

    def keeps_line_rate(self, link: str, wire_bytes: int = 1058) -> bool:
        """Can the engine authenticate back-to-back MTU frames at the
        link's data rate?"""
        if link not in IBA_LINK_GBPS:
            raise KeyError(f"unknown IBA link width {link!r}")
        return self.effective_gbps(wire_bytes) >= IBA_LINK_GBPS[link]


def hodjat_engine(conservative: bool = True) -> SecurityProcessor:
    """The cited 30–70 Gbps AES processor, at its conservative or peak end."""
    return SecurityProcessor(HODJAT_MIN_GBPS if conservative else HODJAT_MAX_GBPS)


def offload_summary(wire_bytes: int = 1058) -> list[dict]:
    """One row per IBA link width: engine latency and line-rate verdicts
    for the conservative and peak engines — the Section-7 conclusion that
    'its speed is comparable to IBA' made checkable."""
    rows = []
    lo, hi = hodjat_engine(True), hodjat_engine(False)
    for link, gbps in IBA_LINK_GBPS.items():
        rows.append(
            {
                "link": link,
                "link_gbps": gbps,
                "latency_ns_min_engine": round(lo.packet_latency_ns(wire_bytes), 1),
                "ok_at_30gbps": lo.keeps_line_rate(link, wire_bytes),
                "ok_at_70gbps": hi.keeps_line_rate(link, wire_bytes),
            }
        )
    return rows
