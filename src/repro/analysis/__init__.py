"""Analytical models from the paper's Sections 5.2 and 6: MAC throughput
normalization (Table 4), forgery probabilities, and the CACTI-style SRAM
access-time argument behind "P_Key table lookup is ~1 cycle".
"""

from repro.analysis.performance import (
    MacPerformance,
    TABLE4,
    table4_rows,
    gbps_at_clock,
    normalize_cycles_per_byte,
)
from repro.analysis.forgery import (
    forgery_probability,
    truncated_forgery_probability,
    partial_digest_forgery,
)
from repro.analysis.sram import sram_access_time_ns, lookup_cycles

__all__ = [
    "MacPerformance",
    "TABLE4",
    "table4_rows",
    "gbps_at_clock",
    "normalize_cycles_per_byte",
    "forgery_probability",
    "truncated_forgery_probability",
    "partial_digest_forgery",
    "sram_access_time_ns",
    "lookup_cycles",
]
