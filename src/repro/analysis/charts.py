"""ASCII rendering of the paper's figures — dependency-free bar/series
charts for terminals, used by the benchmark harness and examples.

The paper's plots are simple enough (grouped bars, two-series lines) that a
text rendering preserves all the information the shape claims rest on.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Series:
    label: str
    values: list[float]


def packet_timeline(events, packet_id: int) -> str:
    """Per-packet lifecycle timeline from trace events.

    *events* is any iterable of :class:`~repro.sim.trace.TraceEvent`;
    only those for *packet_id* are rendered, one line per event with the
    absolute timestamp and the delta since the packet's first event.
    """
    evs = sorted(
        (e for e in events if e.packet_id == packet_id),
        key=lambda e: e.time_ps,
    )
    if not evs:
        return f"packet {packet_id}: no trace events"
    t0 = evs[0].time_ps
    lines = [f"packet {packet_id}: {len(evs)} events"]
    for e in evs:
        delta_us = (e.time_ps - t0) / 1_000_000
        detail = f"  {e.detail}" if e.detail else ""
        lines.append(
            f"  {e.time_us:>12.3f} us  +{delta_us:>9.3f} us  "
            f"{e.kind:<12} @{e.where}{detail}"
        )
    return "\n".join(lines)


def sif_timeline(events, width: int = 60, title: str | None = None) -> str:
    """SIF activation timeline: one band per filter scope plus a trap row.

    Renders, over the traced time span, when each SIF filter was active
    (``#`` between ``A``\\ ctivation and ``D``\\ eactivation marks) and when
    P_Key-violation traps fired (``!`` on the ``traps`` row).  This is the
    paper's Section-3.3 story at a glance: trap → filter on → attack dies
    at the ingress → idle timeout → filter off.
    """
    events = sorted(events, key=lambda e: e.time_ps)
    if not events:
        return title or "no trace events"
    span = max(e.time_ps for e in events) or 1
    col = lambda t: min(width - 1, int(width * t / span))

    traps = [e for e in events if e.kind == "trap_raised"]
    scopes: dict[str, list] = {}
    for e in events:
        if e.kind in ("sif_activated", "sif_deactivated"):
            scopes.setdefault(e.where, []).append(e)

    lines = [title] if title else []
    lines.append(f"span: 0 .. {span / 1_000_000:.1f} us ({width} cols)")
    label_w = max(
        [len("traps")] + [len(s) for s in scopes], default=len("traps")
    )
    if traps:
        row = [" "] * width
        for e in traps:
            row[col(e.time_ps)] = "!"
        lines.append(f"{'traps':<{label_w}} |{''.join(row)}|  {len(traps)} raised")
    for scope in sorted(scopes):
        row = [" "] * width
        active_from: int | None = None
        acts = deacts = 0
        for e in scopes[scope]:
            c = col(e.time_ps)
            if e.kind == "sif_activated":
                acts += 1
                active_from = c
                row[c] = "A"
            else:
                deacts += 1
                start = active_from if active_from is not None else c
                for i in range(start + 1, c):
                    if row[i] == " ":
                        row[i] = "#"
                row[c] = "D"
                active_from = None
        if active_from is not None:  # still active at end of trace
            for i in range(active_from + 1, width):
                if row[i] == " ":
                    row[i] = "#"
        lines.append(
            f"{scope:<{label_w}} |{''.join(row)}|  "
            f"{acts} activation(s), {deacts} deactivation(s)"
        )
    if len(lines) <= 2 and not traps:
        lines.append("(no trap/SIF lifecycle events in trace)")
    return "\n".join(lines)


def hbar_chart(
    rows: list[tuple[str, float]],
    width: int = 50,
    unit: str = "us",
    title: str | None = None,
) -> str:
    """Horizontal bars, one per (label, value) row, scaled to the max."""
    if not rows:
        return title or ""
    peak = max(v for _, v in rows) or 1.0
    label_w = max(len(label) for label, _ in rows)
    lines = [title] if title else []
    for label, value in rows:
        filled = round(width * value / peak)
        lines.append(
            f"{label:<{label_w}} |{'#' * filled}{' ' * (width - filled)}| "
            f"{value:.2f} {unit}"
        )
    return "\n".join(lines)


def grouped_bars(
    groups: list[str],
    series: list[Series],
    width: int = 40,
    unit: str = "us",
    title: str | None = None,
) -> str:
    """The Figure 5/6 layout: for each group (load level), one bar per
    series (enforcement mode / keyed-ness)."""
    for s in series:
        if len(s.values) != len(groups):
            raise ValueError(f"series {s.label!r} has {len(s.values)} values for {len(groups)} groups")
    peak = max(max(s.values) for s in series) or 1.0
    label_w = max(len(s.label) for s in series)
    lines = [title] if title else []
    for gi, group in enumerate(groups):
        lines.append(f"[{group}]")
        for s in series:
            v = s.values[gi]
            filled = round(width * v / peak)
            lines.append(
                f"  {s.label:<{label_w}} |{'#' * filled}{' ' * (width - filled)}| "
                f"{v:.2f} {unit}"
            )
    return "\n".join(lines)


def error_band_chart(
    rows: list[tuple[str, float, float, float]],
    width: int = 50,
    unit: str = "us",
    title: str | None = None,
) -> str:
    """Horizontal bars with confidence whiskers — the Monte Carlo layout.

    *rows* are ``(label, mean, lo, hi)`` tuples (``lo``/``hi`` the interval
    bounds, e.g. from :class:`~repro.sim.stats.ConfidenceInterval`).  The
    bar fills to the mean; the interval renders as ``(`` … ``)`` marks over
    the bar span, so overlapping intervals between adjacent bars — the "is
    this difference real at this seed count?" question — are visible at a
    glance.  A degenerate interval (lo == hi == mean, the single-seed case)
    draws no whisker.
    """
    if not rows:
        return title or ""
    peak = max(hi for _, _, _, hi in rows) or 1.0
    label_w = max(len(label) for label, *_ in rows)
    lines = [title] if title else []
    col = lambda v: min(width - 1, max(0, round(width * v / peak)))
    for label, mean, lo, hi in rows:
        if not (lo <= mean <= hi):
            raise ValueError(f"row {label!r}: need lo <= mean <= hi")
        filled = col(mean)
        band = ["#"] * filled + [" "] * (width - filled)
        if hi > lo:
            band[col(lo)] = "("
            band[col(hi)] = ")"
        suffix = f" ± {(hi - lo) / 2:.2f}" if hi > lo else ""
        lines.append(
            f"{label:<{label_w}} |{''.join(band)}| {mean:.2f}{suffix} {unit}"
        )
    return "\n".join(lines)


def memory_footprint_chart(
    rows: list[tuple[str, int, float, float]],
    width: int = 40,
    title: str | None = None,
) -> str:
    """The four-way bake-off layout: latency bars ordered by the per-port
    memory each filtering design holds.

    *rows* are ``(label, memory_bytes, latency_us, access_ns)`` tuples; they
    are sorted by memory footprint (the x-axis of the comparison), the bar
    renders latency, and each line is annotated with the state size and the
    SRAM access time that capacity implies.  Reading top to bottom answers
    the Table-2 question directly: what does each extra byte of filter
    state buy in delivered latency?
    """
    if not rows:
        return title or ""
    rows = sorted(rows, key=lambda r: (r[1], r[0]))
    peak = max(latency for _, _, latency, _ in rows) or 1.0
    label_w = max(len(label) for label, *_ in rows)
    mem_w = max(len(_mem_label(m)) for _, m, _, _ in rows)
    lines = [title] if title else []
    for label, memory, latency, access_ns in rows:
        filled = round(width * latency / peak)
        lines.append(
            f"{label:<{label_w}} {_mem_label(memory):>{mem_w}} "
            f"({access_ns:.2f} ns) |{'#' * filled}{' ' * (width - filled)}| "
            f"{latency:.2f} us"
        )
    return "\n".join(lines)


def _mem_label(memory_bytes: int) -> str:
    if memory_bytes >= 1024:
        return f"{memory_bytes / 1024:.1f}KiB"
    return f"{memory_bytes}B"


def sweep_progress_chart(
    events: list,
    width: int = 30,
    title: str | None = None,
) -> str:
    """Render a sweep's per-point execution profile as horizontal bars.

    *events* are :class:`~repro.sim.sweep.PointProgress` records (or any
    objects with ``index``, ``overrides``, ``wall_seconds``,
    ``events_per_sec``, ``cache_hits`` and ``cache_misses`` attributes);
    bars are sorted back into grid order, scaled to the slowest point, and
    annotated with throughput and cache activity.  A totals footer sums
    wall time and cache hits/misses across the sweep.
    """
    if not events:
        return title or ""
    events = sorted(events, key=lambda e: e.index)
    labels = [
        " ".join(f"{k}={_short(v)}" for k, v in e.overrides.items()) or "(base)"
        for e in events
    ]
    label_w = max(len(label) for label in labels)
    peak = max(e.wall_seconds for e in events) or 1.0
    lines = [title] if title else []
    for e, label in zip(events, labels):
        filled = round(width * e.wall_seconds / peak)
        note = (
            "cache hit"
            if e.cache_misses == 0 and e.cache_hits > 0
            else f"{e.events_per_sec / 1e3:,.0f}k ev/s"
        )
        lines.append(
            f"{label:<{label_w}} |{'#' * filled}{' ' * (width - filled)}| "
            f"{e.wall_seconds:6.2f}s  {note}"
        )
    wall = sum(e.wall_seconds for e in events)
    hits = sum(e.cache_hits for e in events)
    misses = sum(e.cache_misses for e in events)
    lines.append(
        f"total: {len(events)} points, {wall:.2f}s simulated, "
        f"cache {hits} hit / {misses} miss"
    )
    return "\n".join(lines)


def _short(value) -> str:
    value = getattr(value, "value", value)  # enums print their value
    if isinstance(value, float):
        return f"{value:g}"
    return str(value)


def two_line_series(
    xs: list[float],
    a: Series,
    b: Series,
    height: int = 10,
    title: str | None = None,
) -> str:
    """The Figure 1 layout: two metrics against one x-axis, rendered as a
    compact scatter grid ('Q' for the first series, 'N' for the second)."""
    if len(a.values) != len(xs) or len(b.values) != len(xs):
        raise ValueError("series lengths must match xs")
    peak = max(max(a.values), max(b.values)) or 1.0
    grid = [[" "] * len(xs) for _ in range(height)]
    for col, (va, vb) in enumerate(zip(a.values, b.values)):
        ra = min(height - 1, round((height - 1) * va / peak))
        rb = min(height - 1, round((height - 1) * vb / peak))
        grid[height - 1 - rb][col] = "N"
        grid[height - 1 - ra][col] = "Q" if ra != rb else "*"
    lines = [title] if title else []
    lines.append(f"peak = {peak:.1f}")
    for row in grid:
        lines.append("  " + "  ".join(row))
    lines.append("  " + "  ".join(f"{x:g}" for x in xs))
    lines.append(f"  Q = {a.label}, N = {b.label}, * = overlap")
    return "\n".join(lines)
