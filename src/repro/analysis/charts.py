"""ASCII rendering of the paper's figures — dependency-free bar/series
charts for terminals, used by the benchmark harness and examples.

The paper's plots are simple enough (grouped bars, two-series lines) that a
text rendering preserves all the information the shape claims rest on.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Series:
    label: str
    values: list[float]


def hbar_chart(
    rows: list[tuple[str, float]],
    width: int = 50,
    unit: str = "us",
    title: str | None = None,
) -> str:
    """Horizontal bars, one per (label, value) row, scaled to the max."""
    if not rows:
        return title or ""
    peak = max(v for _, v in rows) or 1.0
    label_w = max(len(label) for label, _ in rows)
    lines = [title] if title else []
    for label, value in rows:
        filled = round(width * value / peak)
        lines.append(
            f"{label:<{label_w}} |{'#' * filled}{' ' * (width - filled)}| "
            f"{value:.2f} {unit}"
        )
    return "\n".join(lines)


def grouped_bars(
    groups: list[str],
    series: list[Series],
    width: int = 40,
    unit: str = "us",
    title: str | None = None,
) -> str:
    """The Figure 5/6 layout: for each group (load level), one bar per
    series (enforcement mode / keyed-ness)."""
    for s in series:
        if len(s.values) != len(groups):
            raise ValueError(f"series {s.label!r} has {len(s.values)} values for {len(groups)} groups")
    peak = max(max(s.values) for s in series) or 1.0
    label_w = max(len(s.label) for s in series)
    lines = [title] if title else []
    for gi, group in enumerate(groups):
        lines.append(f"[{group}]")
        for s in series:
            v = s.values[gi]
            filled = round(width * v / peak)
            lines.append(
                f"  {s.label:<{label_w}} |{'#' * filled}{' ' * (width - filled)}| "
                f"{v:.2f} {unit}"
            )
    return "\n".join(lines)


def two_line_series(
    xs: list[float],
    a: Series,
    b: Series,
    height: int = 10,
    title: str | None = None,
) -> str:
    """The Figure 1 layout: two metrics against one x-axis, rendered as a
    compact scatter grid ('Q' for the first series, 'N' for the second)."""
    if len(a.values) != len(xs) or len(b.values) != len(xs):
        raise ValueError("series lengths must match xs")
    peak = max(max(a.values), max(b.values)) or 1.0
    grid = [[" "] * len(xs) for _ in range(height)]
    for col, (va, vb) in enumerate(zip(a.values, b.values)):
        ra = min(height - 1, round((height - 1) * va / peak))
        rb = min(height - 1, round((height - 1) * vb / peak))
        grid[height - 1 - rb][col] = "N"
        grid[height - 1 - ra][col] = "Q" if ra != rb else "*"
    lines = [title] if title else []
    lines.append(f"peak = {peak:.1f}")
    for row in grid:
        lines.append("  " + "  ".join(row))
    lines.append("  " + "  ".join(f"{x:g}" for x in xs))
    lines.append(f"  Q = {a.label}, N = {b.label}, * = overlap")
    return "\n".join(lines)
