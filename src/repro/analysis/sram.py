"""CACTI-flavoured SRAM timing — the Section-6 argument that a P_Key table
lookup costs about one switch cycle.

The paper: "each port can have at most 32768 P_Keys, and the maximum size
of memory for storing all the P_Keys is 64KB … According to the CACTI
model, 1024KB SRAM memory can be accessed within 5ns.  Since this access
time is similar to the current system bus speed, we can conservatively
estimate that P_Key table access time, f(p), is one clock cycle."

We model access time with the CACTI-style scaling that access latency grows
roughly with the square root of capacity (wordline/bitline RC), anchored at
the paper's (1024 KB → 5 ns) point.  The absolute constants matter less
than the conclusion the model supports: every table size a partition table
can reach fits in one cycle at the paper's clocks.
"""

from __future__ import annotations

import math

#: anchor point quoted from the paper's CACTI citation.
_ANCHOR_KB = 1024.0
_ANCHOR_NS = 5.0


def sram_access_time_ns(capacity_kb: float) -> float:
    """Estimated SRAM access latency for a *capacity_kb* array.

    sqrt-capacity scaling through the paper's (1024 KB, 5 ns) anchor, with
    a 0.3 ns floor for decode/sense overhead.
    """
    if capacity_kb <= 0:
        raise ValueError("capacity must be positive")
    scaled = _ANCHOR_NS * math.sqrt(capacity_kb / _ANCHOR_KB)
    return max(0.3, scaled)


def lookup_cycles(capacity_kb: float, clock_mhz: float) -> int:
    """Clock cycles one access takes at *clock_mhz* (ceil, minimum 1)."""
    if clock_mhz <= 0:
        raise ValueError("clock must be positive")
    cycle_ns = 1000.0 / clock_mhz
    return max(1, math.ceil(sram_access_time_ns(capacity_kb) / cycle_ns))


def pkey_table_lookup_is_one_cycle(
    num_pkeys: int = 32768, clock_mhz: float = 200.0
) -> bool:
    """The paper's conservative claim, checked end to end: a full 64 KB
    P_Key table (32768 × 16-bit) is accessed within one cycle at the 200 MHz
    clock Section 6 uses for the UMAC line-rate argument."""
    from repro.core.overhead import pkey_table_bytes

    capacity_kb = pkey_table_bytes(num_pkeys) / 1024.0
    return lookup_cycles(capacity_kb, clock_mhz) == 1
