"""Greedy delta debugging: minimize a failing scenario.

Given a scenario and a predicate "does the failure still fire?", the
shrinker walks a fixed set of reduction passes — drop tamper/injection/
fault/crash entries (all-at-once, then one-by-one), halve the simulated
horizon, shrink the mesh, remove attackers — keeping each reduction only
when the predicate still holds, and loops until a full round changes
nothing.  Predicates that *error* (e.g. a mesh shrink invalidated a link
name) count as "failure gone", so structurally-broken candidates are
simply not taken.

The result is a smaller scenario that still violates the same invariant,
suitable for a replayable repro file (see :mod:`repro.fuzz.corpus` and
``repro-sim fuzz --shrink``).
"""

from __future__ import annotations

from dataclasses import replace
from typing import Callable

from repro.fuzz.generators import Scenario

#: Scenario list fields the element-dropping passes operate on, in the
#: order they are tried (attack surface first — it is usually the cause).
_LIST_FIELDS = ("tampers", "injections", "link_faults", "switch_crashes")

#: Don't shrink the horizon below this (µs) — runs shorter than a few
#: round trips can't exercise anything.
_MIN_SIM_TIME_US = 20.0


def _safe(predicate: Callable[[Scenario], bool], candidate: Scenario) -> bool:
    try:
        return bool(predicate(candidate))
    except Exception:
        return False


def _shrink_list(scenario: Scenario, name: str,
                 predicate: Callable[[Scenario], bool]) -> Scenario:
    items = list(getattr(scenario, name))
    if not items:
        return scenario
    empty = replace(scenario, **{name: ()})
    if _safe(predicate, empty):
        return empty
    i = len(items) - 1
    while i >= 0 and len(items) > 1:
        candidate = replace(
            scenario, **{name: tuple(items[:i] + items[i + 1:])}
        )
        if _safe(predicate, candidate):
            items.pop(i)
            scenario = candidate
        i -= 1
    return scenario


def _shrink_scalars(scenario: Scenario,
                    predicate: Callable[[Scenario], bool]) -> Scenario:
    config = scenario.config

    # shorter schedule
    sim_time = float(config.get("sim_time_us", 0))
    if sim_time / 2 >= _MIN_SIM_TIME_US:
        candidate = replace(
            scenario, config={**config, "sim_time_us": round(sim_time / 2, 3)}
        )
        if _safe(predicate, candidate):
            scenario = candidate
            config = scenario.config

    # fewer nodes (invalidated link names / LIDs make the predicate error,
    # which reads as "not preserved" — the candidate is just skipped)
    for axis in ("mesh_width", "mesh_height"):
        size = int(config.get(axis, 2))
        if size > 2:
            candidate = replace(scenario, config={**config, axis: size - 1})
            if _safe(predicate, candidate):
                scenario = candidate
                config = scenario.config

    # no attackers
    if int(config.get("num_attackers", 0)) > 0:
        candidate = replace(scenario, config={**config, "num_attackers": 0})
        if _safe(predicate, candidate):
            scenario = candidate

    return scenario


def shrink(scenario: Scenario, predicate: Callable[[Scenario], bool],
           max_rounds: int = 8) -> Scenario:
    """Smallest scenario (greedy, not global) for which *predicate* holds.

    *predicate* must return True while the original failure still fires.
    The input scenario is assumed failing; it is returned unchanged if no
    reduction preserves the failure.
    """
    for _ in range(max_rounds):
        before = scenario
        for name in _LIST_FIELDS:
            scenario = _shrink_list(scenario, name, predicate)
        scenario = _shrink_scalars(scenario, predicate)
        if scenario == before:
            break
    return scenario


def shrink_failure(scenario: Scenario, oracle: str) -> Scenario:
    """Minimize *scenario* while the named oracle still reports a violation
    (re-executing both datapath modes per probe)."""
    from repro.fuzz.oracles import run_scenario

    def still_fails(candidate: Scenario) -> bool:
        result = run_scenario(candidate)
        return any(v.oracle == oracle for v in result.violations)

    return shrink(scenario, still_fails)
