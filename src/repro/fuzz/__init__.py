"""Differential fuzzing & invariant checking for the whole simulator.

The subsystem closes the loop the paper's evaluation leaves open: the
simulator *claims* packet conservation, SIF state-machine legality, auth
soundness, and fast-vs-reference datapath equivalence on every run — this
package makes those claims machine-checkable on *randomly generated*
scenarios instead of hand-picked test fixtures.

Pipeline (see DESIGN.md §3e):

* :mod:`repro.fuzz.generators` — seed-driven scenario synthesis (random
  topology/partition/traffic/attacker draws) plus mutation-based packet
  tampering and forged-packet injection, all on :class:`~repro.sim.rng.RngStreams`
  so every scenario is a pure function of ``(master_seed, index)``.
* :mod:`repro.fuzz.oracles` — executes a scenario under a chosen datapath
  mode and checks the invariant catalogue, including the differential
  oracle that replays the scenario under ``fast`` vs ``reference``.
* :mod:`repro.fuzz.shrink` — greedy delta debugging: minimize a failing
  scenario while the same oracle still fires.
* :mod:`repro.fuzz.corpus` — content-addressed JSON corpus of failures
  and replayable repro files (``repro-sim fuzz --replay``).
"""

from repro.fuzz.generators import (  # noqa: F401
    ForgedInject,
    LinkFault,
    MUTATIONS,
    PacketTamper,
    Scenario,
    SwitchCrash,
    generate_scenario,
)
from repro.fuzz.oracles import (  # noqa: F401
    FuzzRun,
    ScenarioResult,
    Violation,
    check_differential,
    check_run,
    execute_scenario,
    run_scenario,
)
from repro.fuzz.shrink import shrink  # noqa: F401
