"""Deterministic scenario synthesis and packet mutation for the fuzzer.

A :class:`Scenario` is a complete, JSON-serializable description of one
randomized experiment: a :class:`~repro.sim.config.SimConfig` draw (mesh
shape, partitions, traffic mix, enforcement/auth modes, attacker placement)
plus schedules of link faults, switch crashes, mid-link packet tampering,
and forged-packet injections.  Scenarios are a pure function of
``(master_seed, index)`` — every random draw flows through one
:class:`~repro.sim.rng.RngStreams` stream — so the same pair always yields
byte-identical scenarios, which is what makes corpus entries replayable and
the differential oracle meaningful.

Mutation catalogue (:data:`MUTATIONS`): every mutation is chosen so a
tampered packet is *guaranteed undeliverable* — either a security checkpoint
(P_Key, Q_Key) rejects it or the ICRC/MAC covering the mutated field fails
verification.  That guarantee is what the auth-soundness oracle checks.
The LRH ``VL`` field is deliberately never mutated: credits are accounted
per VL at every hop, so changing it mid-flight would corrupt flow control
rather than model an attack the receiver could see.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import asdict, dataclass, field

from repro.iba.keys import PKey, QKey
from repro.iba.packet import DataPacket
from repro.sim.config import AuthMode, EnforcementMode, KeyMgmtMode, SimConfig
from repro.sim.rng import RngStreams

#: Wire-tamper mutations.  All keep ``wire_length`` unchanged (link timing
#: is part of the scenario, not the attack) and never touch the VL.
MUTATIONS = (
    "payload_bit_flip",
    "payload_truncate",
    "pkey_swap",
    "dlid_swap",
    "qkey_flip",
    "psn_flip",
    "icrc_flip",
)

#: Forged-injection kinds.  Each must die at a known checkpoint in every
#: auth/enforcement combination the generator can draw.
INJECTION_KINDS = ("random_pkey", "bad_qkey", "guessed_tag", "truncated")

#: Schema identity: ``<name>/<version>``.  The version is the compatibility
#: contract for everything that persists or transmits scenarios — corpus
#: entries, ``repro-sim fuzz --replay`` files, and the job service's POST
#: body.  Bump :data:`SCENARIO_SCHEMA_VERSION` (and extend
#: :data:`SUPPORTED_SCHEMA_VERSIONS` if the old shape stays readable)
#: whenever :class:`Scenario`'s serialized shape changes.
SCENARIO_SCHEMA_NAME = "repro.fuzz_scenario"
SCENARIO_SCHEMA_VERSION = 1
SUPPORTED_SCHEMA_VERSIONS = (1,)
SCENARIO_SCHEMA = f"{SCENARIO_SCHEMA_NAME}/{SCENARIO_SCHEMA_VERSION}"


class ScenarioValidationError(ValueError):
    """A scenario dict failed strict validation (the service's 400 path)."""


def parse_schema_version(schema: object) -> int:
    """Extract and check the version from a ``name/version`` schema string.

    Raises :class:`ScenarioValidationError` on anything but a supported
    ``repro.fuzz_scenario/<int>`` spelling.
    """
    if not isinstance(schema, str):
        raise ScenarioValidationError(
            f"schema must be a string, got {type(schema).__name__}"
        )
    name, sep, version_text = schema.partition("/")
    if not sep or name != SCENARIO_SCHEMA_NAME or not version_text.isdigit():
        raise ScenarioValidationError(
            f"unknown scenario schema {schema!r} (expected "
            f"'{SCENARIO_SCHEMA_NAME}/<version>')"
        )
    version = int(version_text)
    if version not in SUPPORTED_SCHEMA_VERSIONS:
        raise ScenarioValidationError(
            f"unsupported scenario schema version {version} "
            f"(supported: {list(SUPPORTED_SCHEMA_VERSIONS)})"
        )
    return version


@dataclass(frozen=True)
class LinkFault:
    """Take one named link down at ``fail_us`` (and maybe back up)."""

    link: str
    fail_us: float
    restore_us: float | None = None


@dataclass(frozen=True)
class SwitchCrash:
    """Crash the switch at ``(x, y)`` (keys leak, attached links fail)."""

    x: int
    y: int
    at_us: float
    restore_us: float | None = None


@dataclass(frozen=True)
class PacketTamper:
    """Mutate the ``ordinal``-th packet that crosses ``link``.

    An ``hca*->sw*`` link models tampering at the source HCA's egress; a
    ``sw*->*`` link is classic mid-link (wire) tampering.
    """

    link: str
    ordinal: int
    mutation: str
    param: int


@dataclass(frozen=True)
class ForgedInject:
    """Inject one forged packet at ``src_lid`` toward ``dst_lid`` at ``at_us``."""

    src_lid: int
    dst_lid: int
    at_us: float
    kind: str
    param: int


@dataclass(frozen=True)
class Scenario:
    """One fully-specified fuzz experiment (JSON round-trippable)."""

    name: str
    config: dict = field(default_factory=dict)
    link_faults: tuple[LinkFault, ...] = ()
    switch_crashes: tuple[SwitchCrash, ...] = ()
    tampers: tuple[PacketTamper, ...] = ()
    injections: tuple[ForgedInject, ...] = ()

    def build_config(self) -> SimConfig:
        """Materialize the stored config dict into a validated SimConfig."""
        d = dict(self.config)
        d["enforcement"] = EnforcementMode(d.get("enforcement", "none"))
        d["auth"] = AuthMode(d.get("auth", "icrc"))
        d["keymgmt"] = KeyMgmtMode(d.get("keymgmt", "none"))
        cfg = SimConfig(**d)
        cfg.validate()
        return cfg

    # -- serialization ------------------------------------------------------

    def to_dict(self) -> dict:
        d = asdict(self)
        d["schema"] = SCENARIO_SCHEMA
        return d

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)

    @classmethod
    def from_dict(cls, d: dict, strict: bool = False) -> "Scenario":
        """Rebuild a scenario from its :meth:`to_dict` form.

        The default mode is the tolerant corpus/replay reader: a missing
        ``schema`` field is assumed current and unknown keys are ignored.
        ``strict=True`` is the wire-facing contract the job service's
        POST handler uses: the schema-version field is mandatory, every
        unknown key (top-level, config, or schedule entry) is rejected,
        and field types are checked — all failures raise
        :class:`ScenarioValidationError` (a ``ValueError``), which the
        API maps to HTTP 400.
        """
        if strict:
            _validate_scenario_dict(d)
        else:
            schema = d.get("schema", SCENARIO_SCHEMA)
            parse_schema_version(schema)
        if not isinstance(d.get("name"), str):
            raise ScenarioValidationError("'name' must be a string")
        return cls(
            name=d["name"],
            config=dict(d.get("config", {})),
            link_faults=tuple(LinkFault(**f) for f in d.get("link_faults", ())),
            switch_crashes=tuple(SwitchCrash(**c) for c in d.get("switch_crashes", ())),
            tampers=tuple(PacketTamper(**t) for t in d.get("tampers", ())),
            injections=tuple(ForgedInject(**i) for i in d.get("injections", ())),
        )

    @classmethod
    def from_json(cls, text: str, strict: bool = False) -> "Scenario":
        return cls.from_dict(json.loads(text), strict=strict)

    def summary(self) -> str:
        """One deterministic line describing the scenario (CLI output)."""
        c = self.config
        return (
            f"{self.name} mesh={c['mesh_width']}x{c['mesh_height']}"
            f" parts={c['num_partitions']} enf={c['enforcement']}"
            f" auth={c['auth']} attackers={c['num_attackers']}"
            f" t={c['sim_time_us']:g}us faults={len(self.link_faults)}"
            f"+{len(self.switch_crashes)} tampers={len(self.tampers)}"
            f" injections={len(self.injections)}"
        )


# -- strict wire-format validation -------------------------------------------

#: Top-level keys a serialized scenario may carry (exactly ``to_dict``'s).
_TOP_LEVEL_KEYS = frozenset(
    ("schema", "name", "config", "link_faults", "switch_crashes", "tampers",
     "injections")
)

#: Schedule-entry shape: dataclass, {field: kind}, required-field set.
#: Kinds: ``"str"``, ``"int"``, ``"number"``; a ``?`` suffix also admits
#: ``null``.  (Booleans are deliberately *not* numbers here — JSON ``true``
#: in a time field is a client bug, not a timestamp.)
_SCHEDULE_SPECS: dict[str, tuple[type, dict[str, str], frozenset]] = {
    "link_faults": (
        LinkFault,
        {"link": "str", "fail_us": "number", "restore_us": "number?"},
        frozenset(("link", "fail_us")),
    ),
    "switch_crashes": (
        SwitchCrash,
        {"x": "int", "y": "int", "at_us": "number", "restore_us": "number?"},
        frozenset(("x", "y", "at_us")),
    ),
    "tampers": (
        PacketTamper,
        {"link": "str", "ordinal": "int", "mutation": "str", "param": "int"},
        frozenset(("link", "ordinal", "mutation", "param")),
    ),
    "injections": (
        ForgedInject,
        {"src_lid": "int", "dst_lid": "int", "at_us": "number", "kind": "str",
         "param": "int"},
        frozenset(("src_lid", "dst_lid", "at_us", "kind", "param")),
    ),
}


def _kind_ok(value: object, kind: str) -> bool:
    if kind.endswith("?"):
        if value is None:
            return True
        kind = kind[:-1]
    if kind == "str":
        return isinstance(value, str)
    if kind == "int":
        return isinstance(value, int) and not isinstance(value, bool)
    if kind == "number":
        return isinstance(value, (int, float)) and not isinstance(value, bool)
    raise AssertionError(f"unknown kind {kind!r}")


def _validate_scenario_dict(d: object) -> None:
    """Strict structural validation of a wire-format scenario dict.

    Raises :class:`ScenarioValidationError` with a client-actionable
    message on the first problem found.  Semantic config validation
    (value ranges, mode combinations) still happens in
    :meth:`Scenario.build_config` — callers on the 400 path must run
    both.
    """
    if not isinstance(d, dict):
        raise ScenarioValidationError("scenario payload must be a JSON object")
    unknown = set(map(str, d)) - _TOP_LEVEL_KEYS
    if unknown:
        raise ScenarioValidationError(
            f"unknown top-level keys: {sorted(unknown)}"
        )
    if "schema" not in d:
        raise ScenarioValidationError(
            f"missing required 'schema' field (current: {SCENARIO_SCHEMA!r})"
        )
    parse_schema_version(d["schema"])
    name = d.get("name")
    if not isinstance(name, str) or not name:
        raise ScenarioValidationError("'name' must be a non-empty string")
    config = d.get("config", {})
    if not isinstance(config, dict):
        raise ScenarioValidationError("'config' must be a JSON object")
    known_fields = {f.name for f in dataclasses.fields(SimConfig)}
    unknown_cfg = set(map(str, config)) - known_fields
    if unknown_cfg:
        raise ScenarioValidationError(
            f"unknown config keys: {sorted(unknown_cfg)}"
        )
    for key, value in config.items():
        if isinstance(value, (list, tuple)):
            if not all(isinstance(v, (str, int, float, bool)) for v in value):
                raise ScenarioValidationError(
                    f"config.{key} list entries must be JSON scalars"
                )
        elif not isinstance(value, (str, int, float, bool)) and value is not None:
            raise ScenarioValidationError(
                f"config.{key} must be a JSON scalar, got "
                f"{type(value).__name__}"
            )
    for list_key, (_cls, kinds, required) in _SCHEDULE_SPECS.items():
        entries = d.get(list_key, ())
        if not isinstance(entries, (list, tuple)):
            raise ScenarioValidationError(f"'{list_key}' must be a list")
        for i, entry in enumerate(entries):
            if not isinstance(entry, dict):
                raise ScenarioValidationError(
                    f"{list_key}[{i}] must be a JSON object"
                )
            unknown_entry = set(map(str, entry)) - set(kinds)
            if unknown_entry:
                raise ScenarioValidationError(
                    f"{list_key}[{i}]: unknown keys {sorted(unknown_entry)}"
                )
            missing = required - set(entry)
            if missing:
                raise ScenarioValidationError(
                    f"{list_key}[{i}]: missing required keys {sorted(missing)}"
                )
            for field_name, value in entry.items():
                if not _kind_ok(value, kinds[field_name]):
                    raise ScenarioValidationError(
                        f"{list_key}[{i}].{field_name} must be "
                        f"{kinds[field_name].rstrip('?')}"
                        + (" or null" if kinds[field_name].endswith("?") else "")
                    )


def mesh_link_names(width: int, height: int) -> list[str]:
    """Every directed link name of a width×height mesh, in the same
    deterministic order :meth:`~repro.iba.topology.Fabric.all_links` yields
    (a unit test pins the two enumerations together)."""
    from repro.iba.topology import _DIRS, node_lid

    names: list[str] = []
    coords = [(x, y) for y in range(height) for x in range(width)]
    # HCA up-links, in LID order
    for x, y in sorted(coords, key=lambda c: int(node_lid(c[0], c[1], width))):
        names.append(f"hca{int(node_lid(x, y, width))}->sw({x},{y})")
    # per-switch out-links, in coordinate order: HCA down-link then mesh ports
    for x, y in sorted(coords):
        names.append(f"sw({x},{y})->hca{int(node_lid(x, y, width))}")
        for _port, (dx, dy) in _DIRS.items():
            nx, ny = x + dx, y + dy
            if 0 <= nx < width and 0 <= ny < height:
                names.append(f"sw({x},{y})->sw({nx},{ny})")
    return names


def generate_scenario(master_seed: int, index: int) -> Scenario:
    """The ``index``-th random scenario under ``master_seed``.

    Pure: same arguments, same scenario — all randomness comes from one
    named :class:`RngStreams` stream, so generation order doesn't matter.
    """
    rng = RngStreams(master_seed).get("fuzz.scenario", index)

    width = rng.choice((2, 2, 3, 3))
    height = rng.choice((2, 3))
    nodes = width * height
    num_partitions = rng.randint(2, min(4, nodes))
    enforcement = rng.choice(("none", "dpt", "if", "sif", "bloom"))
    auth = rng.choice(("icrc", "icrc", "umac", "hmac_md5"))
    keymgmt = "none" if auth == "icrc" else rng.choice(("partition", "qp"))
    num_attackers = min(rng.choice((0, 0, 1, 1, 2)), nodes - 2)
    sim_time_us = float(rng.choice((120, 160, 200)))

    config = {
        "mesh_width": width,
        "mesh_height": height,
        "num_partitions": num_partitions,
        "partition_layout": "random",
        "enforcement": enforcement,
        "auth": auth,
        "keymgmt": keymgmt,
        "best_effort_load": rng.choice((0.20, 0.30, 0.40)),
        "realtime_load": rng.choice((0.05, 0.10)),
        "num_attackers": num_attackers,
        "attack_duty_cycle": 1.0,
        "attack_valid_pkey": False,
        "replay_protection": auth != "icrc" and rng.random() < 0.25,
        "sif_idle_timeout_us": float(rng.choice((50, 100, 200))),
        "sim_time_us": sim_time_us,
        "warmup_us": 0.0,
        "seed": rng.randrange(1, 2**31),
        "keep_samples": False,
        "rsa_bits": 256,
    }
    if enforcement == "bloom":
        # Small arrays are deliberately in range so false positives actually
        # occur under fuzzing (the dominance oracle must hold regardless).
        config["bloom_bits"] = int(rng.choice((64, 256, 1024)))
        config["bloom_hashes"] = int(rng.choice((2, 3, 4)))
        config["bloom_inpacket_tag"] = bool(rng.random() < 0.5)

    # Open-loop traffic family: every model's parameters are drawn so its
    # characteristic behaviour fits the short 120-200 µs fuzz horizon (the
    # conservation/differential oracles must hold under bursty arrivals too).
    traffic_model = rng.choice(
        ("poisson", "poisson", "mmpp", "flash_crowd", "incast", "elephant_mice")
    )
    config["traffic_model"] = traffic_model
    if traffic_model == "mmpp":
        config["mmpp_on_us"] = float(rng.choice((20, 40, 80)))
        config["mmpp_off_us"] = float(rng.choice((20, 40, 80)))
    elif traffic_model == "flash_crowd":
        config["flash_crowd_at_us"] = round(rng.uniform(0.2, 0.6) * sim_time_us, 3)
        config["flash_crowd_multiplier"] = float(rng.choice((1.5, 2.0, 3.0)))
    elif traffic_model == "incast":
        config["incast_period_us"] = float(rng.choice((20, 40, 60)))
        config["incast_burst_packets"] = int(rng.choice((2, 4, 8)))
    elif traffic_model == "elephant_mice":
        config["elephant_fraction"] = float(rng.choice((0.2, 0.25, 0.4)))
        config["elephant_boost"] = float(rng.choice((1.5, 2.0)))
    if num_attackers and rng.random() < 0.3:
        # mid-run coordinated attacker ramp
        config["attack_start_us"] = round(rng.uniform(0.1, 0.4) * sim_time_us, 3)
        config["attack_ramp_us"] = round(rng.uniform(0.1, 0.3) * sim_time_us, 3)

    links = mesh_link_names(width, height)
    coords = [(x, y) for y in range(height) for x in range(width)]

    def t(lo_frac: float, hi_frac: float) -> float:
        return round(rng.uniform(lo_frac, hi_frac) * sim_time_us, 3)

    link_faults = tuple(
        LinkFault(
            link=rng.choice(links),
            fail_us=t(0.10, 0.50),
            restore_us=t(0.55, 0.85) if rng.random() < 0.5 else None,
        )
        for _ in range(rng.randint(0, 2))
    )
    switch_crashes: tuple[SwitchCrash, ...] = ()
    if rng.random() < 0.35:
        x, y = rng.choice(coords)
        switch_crashes = (
            SwitchCrash(
                x=x, y=y, at_us=t(0.15, 0.45),
                restore_us=t(0.55, 0.85) if rng.random() < 0.5 else None,
            ),
        )
    tampers = tuple(
        PacketTamper(
            link=rng.choice(links),
            ordinal=rng.randint(0, 8),
            mutation=rng.choice(MUTATIONS),
            param=rng.randrange(1, 2**24),
        )
        for _ in range(rng.randint(0, 3))
    )
    injections = tuple(
        ForgedInject(
            src_lid=(pair := rng.sample(range(1, nodes + 1), 2))[0],
            dst_lid=pair[1],
            at_us=t(0.05, 0.80),
            kind=rng.choice(INJECTION_KINDS),
            param=rng.randrange(1, 2**31),
        )
        for _ in range(rng.randint(0, 3))
    )

    return Scenario(
        name=f"fuzz-{master_seed}-{index}",
        config=config,
        link_faults=link_faults,
        switch_crashes=switch_crashes,
        tampers=tampers,
        injections=injections,
    )


def generate_shard_scenario(master_seed: int, index: int) -> Scenario:
    """The ``index``-th random **shard-safe** scenario under ``master_seed``.

    Shard-safe scenarios drive the sharded-vs-single-process differential
    (DESIGN.md §3j), so they draw only from the envelope where the sharded
    engine is bit-identical to the single-process oracle on counters and
    delivery stats:

    * fat-tree topology (the only sharded topology), ``pod`` partition
      layout, two shards on ``k=4``;
    * no faults, tampers, or forged injections (those install through the
      single-process ``setup`` hook);
    * ``keymgmt=none`` / ``auth=icrc`` (key exchange is SM-interactive);
    * at most **one** flooder — multiple saturating attack flows meeting at
      a core switch create same-picosecond arbitration ties whose order is
      scheduling-dependent, which is exactly what the shard-safe guarantee
      excludes.

    Pure in ``(master_seed, index)`` like :func:`generate_scenario`.
    """
    rng = RngStreams(master_seed).get("fuzz.shard_scenario", index)

    enforcement = rng.choice(("none", "dpt", "if", "sif", "bloom"))
    num_attackers = rng.choice((0, 1, 1, 1))
    sim_time_us = float(rng.choice((200, 250, 300)))

    config = {
        "topology": "fat_tree",
        "fat_tree_k": 4,
        "num_partitions": rng.randint(2, 4),
        "partition_layout": "pod",
        "enforcement": enforcement,
        "auth": "icrc",
        "keymgmt": "none",
        "best_effort_load": rng.choice((0.30, 0.40, 0.50)),
        "realtime_load": rng.choice((0.05, 0.10)),
        "num_attackers": num_attackers,
        "attack_valid_pkey": False,
        "sif_idle_timeout_us": float(rng.choice((50, 100, 200))),
        "sim_time_us": sim_time_us,
        "warmup_us": 100.0,
        "seed": rng.randrange(1, 2**31),
        "keep_samples": True,
        "shards": 2,
        "shard_transport": "inline",
    }
    if enforcement == "bloom":
        config["bloom_bits"] = int(rng.choice((1024, 4096)))
        config["bloom_hashes"] = int(rng.choice((2, 3)))
    traffic_model = rng.choice(("poisson", "poisson", "mmpp", "elephant_mice"))
    config["traffic_model"] = traffic_model
    if traffic_model == "mmpp":
        config["mmpp_on_us"] = float(rng.choice((20, 40, 80)))
        config["mmpp_off_us"] = float(rng.choice((20, 40, 80)))
    elif traffic_model == "elephant_mice":
        config["elephant_fraction"] = float(rng.choice((0.2, 0.25)))
        config["elephant_boost"] = float(rng.choice((1.5, 2.0)))

    return Scenario(name=f"shard-fuzz-{master_seed}-{index}", config=config)


# -- mutation application ----------------------------------------------------


@dataclass(frozen=True)
class MutationContext:
    """Fabric facts a mutation may swap values against."""

    valid_pkeys: tuple[PKey, ...]  #: every partition P_Key, sorted by value.
    lids: tuple[int, ...]  #: every node LID, sorted.


def apply_mutation(packet: DataPacket, mutation: str, param: int,
                   ctx: MutationContext) -> str:
    """Mutate *packet* in place; returns the mutation actually applied
    (a guarded mutation may fall back to ``payload_bit_flip``).

    Every path leaves the packet undeliverable: either a swapped field no
    longer matches the receiver's tables, or an ICRC/MAC-covered field
    changed under an unchanged tag.  Header writes bump the headers'
    mutation stamps, so the serialization/CRC/MAC caches can never serve
    stale bytes for a tampered packet.
    """
    if mutation == "pkey_swap":
        others = tuple(p for p in ctx.valid_pkeys if p.value != packet.pkey.value)
        if others:
            packet.bth.pkey = others[param % len(others)]
            return mutation
        mutation = "payload_bit_flip"
    if mutation == "dlid_swap":
        from repro.iba.types import LID

        others = tuple(l for l in ctx.lids if l != int(packet.dst))
        if others:
            packet.lrh.dlid = LID(others[param % len(others)])
            return mutation
        mutation = "payload_bit_flip"
    if mutation == "qkey_flip":
        if packet.deth is not None:
            flip = (param & 0xFFFFFFFF) or 1
            packet.deth.qkey = QKey(packet.deth.qkey.value ^ flip)
            return mutation
        mutation = "payload_bit_flip"
    if mutation == "psn_flip":
        packet.bth.psn ^= (param & 0xFFFFFF) or 1
        return mutation
    if mutation == "icrc_flip":
        packet.icrc ^= (param & 0xFFFFFFFF) or 1
        return mutation
    if mutation == "payload_truncate":
        if len(packet.payload) > 1:
            packet.payload = packet.payload[:-1]
            return mutation
        mutation = "payload_bit_flip"
    if mutation == "payload_bit_flip":
        data = bytearray(packet.payload)
        if not data:
            data = bytearray(b"\x00")
        bit = param % (len(data) * 8)
        data[bit // 8] ^= 1 << (bit % 8)
        packet.payload = bytes(data)
        return mutation
    raise ValueError(f"unknown mutation {mutation!r}")
