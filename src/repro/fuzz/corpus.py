"""Failure corpus: content-addressed JSON entries + replayable repro files.

A corpus directory is flat: one ``<sha256-prefix>.json`` per failing
scenario.  The filename is the hash of the entry's canonical JSON, so
re-running the same fuzz campaign writes the same file — no timestamps, no
collisions across datapath modes, byte-for-byte deterministic, and the same
failure found twice dedupes itself.

Entry layout (``repro.fuzz_corpus/1``)::

    {
      "schema": "repro.fuzz_corpus/1",
      "oracle": "conservation",            # first violated invariant
      "violations": [{"oracle": ..., "mode": ..., "message": ...}, ...],
      "scenario": { ... Scenario.to_dict() ... }
    }

An entry *is* a repro file: ``repro-sim fuzz --replay PATH`` rebuilds the
scenario and re-runs every oracle on it.
"""

from __future__ import annotations

import hashlib
import json
import os

from repro.fuzz.generators import Scenario
from repro.fuzz.oracles import ScenarioResult, Violation

CORPUS_SCHEMA = "repro.fuzz_corpus/1"


def entry_for(scenario: Scenario, violations: list[Violation]) -> dict:
    """Corpus entry for one failing scenario (post-shrink if shrunk)."""
    return {
        "schema": CORPUS_SCHEMA,
        "oracle": violations[0].oracle if violations else "unknown",
        "violations": [
            {"oracle": v.oracle, "mode": v.mode, "message": v.message}
            for v in violations
        ],
        "scenario": scenario.to_dict(),
    }


def entry_from_result(result: ScenarioResult) -> dict:
    return entry_for(result.scenario, result.violations)


def canonical_json(entry: dict) -> str:
    return json.dumps(entry, indent=2, sort_keys=True)


def entry_filename(entry: dict) -> str:
    digest = hashlib.sha256(canonical_json(entry).encode()).hexdigest()
    return f"{digest[:16]}.json"


def save_entry(corpus_dir: str, entry: dict) -> str:
    """Write *entry* into *corpus_dir* (created if missing); returns path."""
    os.makedirs(corpus_dir, exist_ok=True)
    path = os.path.join(corpus_dir, entry_filename(entry))
    with open(path, "w", encoding="utf-8") as f:
        f.write(canonical_json(entry) + "\n")
    return path


def load_entry(path: str) -> dict:
    with open(path, encoding="utf-8") as f:
        entry = json.load(f)
    schema = entry.get("schema")
    if schema != CORPUS_SCHEMA:
        raise ValueError(f"{path}: unknown corpus schema {schema!r}")
    return entry


def scenario_of(entry: dict) -> Scenario:
    return Scenario.from_dict(entry["scenario"])


def iter_entries(corpus_dir: str) -> list[tuple[str, dict]]:
    """(path, entry) for every corpus file, sorted by filename."""
    if not os.path.isdir(corpus_dir):
        return []
    out = []
    for name in sorted(os.listdir(corpus_dir)):
        if name.endswith(".json"):
            path = os.path.join(corpus_dir, name)
            out.append((path, load_entry(path)))
    return out
