"""Scenario execution and the invariant catalogue (DESIGN.md §3e).

:func:`execute_scenario` runs one :class:`~repro.fuzz.generators.Scenario`
under a chosen datapath mode, installing its faults, wire tamperers, and
forged injections through ``run_simulation``'s ``setup`` hook, and returns a
:class:`FuzzRun` bundling the report, the full trace, the live fabric, and
the identity sets the oracles need.

Single-run oracles (:data:`ORACLES`):

* ``conservation`` — every packet that entered a send queue is accounted
  for: delivered, dropped at an HCA checkpoint, filtered/unroutable at a
  switch, or still in flight somewhere the fabric can enumerate.
* ``counter_trace`` — the counter registry and the trace bus tell the same
  story (delivered/filtered/trap/SIF counts match event counts; a link
  never comes up more often than it went down).
* ``sif_legality`` — SIF (and the Bloom filter, which shares its trap-driven
  control plane) only ever activates after a trap was raised, and SIF's
  Invalid_P_Key_Table never exceeds the whitelist bound.
* ``auth_soundness`` — no tampered or forged packet is ever delivered as
  authentic.
* ``bloom_dominance`` — on a shadow leg (``bloom_shadow=True``), a
  :class:`BloomPortFilter` fed the *identical* packet and registration
  stream as the live SIF filter may over-filter (false positives, counted
  separately) but must never pass a packet SIF dropped.

:func:`check_differential` is the two-run oracle: the same scenario under
``set_datapath("fast")`` vs ``"reference"`` must produce identical counters,
stats, and traces (packet ids compared relative to each run's base, since
ids are process-globally monotonic).  The same check runs across the
scheduler axis (``wheel`` calendar queue vs the ``heap`` oracle — the
scale core must not change one observable bit), and
:func:`check_observability_differential` proves a disabled observability
layer changes nothing but the bookkeeping itself.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.core.attacks import forge_packet, inject_raw
from repro.core.auth import auth_function_for
from repro.core.enforcement import BloomPortFilter, SIFPortFilter, bloom_port_salt
from repro.datapath import get_datapath, set_datapath
from repro.observability import get_observability, set_observability
from repro.sim.scheduler import get_scheduler, set_scheduler
from repro.fuzz.generators import (
    ForgedInject,
    MutationContext,
    Scenario,
    apply_mutation,
)
from repro.iba.hca import HCA
from repro.iba.keys import PKey, QKey
from repro.iba.packet import DataPacket, current_packet_seq
from repro.iba.switch import HCA_PORT
from repro.iba.topology import Fabric
from repro.iba.types import QPN
from repro.sim.config import AuthMode, SimConfig
from repro.sim.engine import PS_PER_US
from repro.sim.faults import FaultInjector
from repro.sim.runner import SimReport, run_simulation
from repro.sim.trace import NO_PACKET, Tracer

#: HCA receive-side drop counters — together with the switch drop counters
#: these are the only exits a submitted packet has besides delivery.
HCA_DROP_COUNTERS = (
    "pkey_violations",
    "qkey_violations",
    "auth_failures",
    "replay_drops",
)


@dataclass(frozen=True)
class Violation:
    """One invariant failure, attributed to an oracle and a run mode."""

    oracle: str
    mode: str  #: ``reference`` | ``fast`` | ``differential``
    message: str

    def __str__(self) -> str:
        return f"[{self.mode}:{self.oracle}] {self.message}"


@dataclass
class FuzzRun:
    """Everything one scenario execution leaves behind for the oracles."""

    scenario: Scenario
    mode: str
    report: SimReport
    tracer: Tracer
    fabric: Fabric
    base_seq: int  #: packet-id high-water mark before the run started.
    tampered_ids: set[int] = field(default_factory=set)
    injected_ids: set[int] = field(default_factory=set)
    #: shadow Bloom filters installed alongside live SIF filters
    #: (``execute_scenario(..., bloom_shadow=True)``); empty otherwise.
    bloom_shadows: list["_BloomShadowFilter"] = field(default_factory=list)

    def rel(self, packet_id: int) -> int:
        """Packet id relative to this run's base (stable across runs)."""
        return packet_id if packet_id == NO_PACKET else packet_id - self.base_seq


def _build_injection(inj: ForgedInject, fabric: Fabric, config: SimConfig) -> DataPacket:
    """Materialize one forged packet at fire time.

    Every kind is undeliverable by construction: ``random_pkey`` fails the
    P_Key checkpoint (or an enforcement filter), ``bad_qkey`` passes P_Key
    but fails the Q_Key match, ``guessed_tag`` reaches ICRC/MAC verification
    with a random 32-bit tag, and ``truncated`` carries a stale CRC over a
    shortened payload.  Under MAC auth the CRC-stamped kinds additionally
    die as unauthenticated (``resv8a == 0`` in a protected partition).
    """
    src = fabric.hca(inj.src_lid)
    dst = fabric.hca(inj.dst_lid)
    src_qp = src.qps[QPN(0x100 + inj.src_lid)]
    dst_qpn = QPN(0x100 + inj.dst_lid)
    dst_qp = dst.qps[dst_qpn]
    dst_pkey = min(dst.keys.pkeys, key=lambda p: p.value)
    param = inj.param

    if inj.kind == "random_pkey":
        valid = {p.index for hca in fabric.hcas.values() for p in hca.keys.pkeys}
        idx = 1 + (param % 0x7FFE)
        while idx in valid:
            idx = 1 + (idx % 0x7FFE)
        bad = PKey(idx | (PKey.FULL_MEMBER_BIT if param & 1 else 0))
        return forge_packet(
            src, src_qp, dst.lid, dst_qpn, bad, dst_qp.qkey, config.mtu_bytes
        )
    if inj.kind == "bad_qkey":
        wrong = QKey((dst_qp.qkey.value ^ (param & 0x7FFFFFFF) or 1) & 0x7FFFFFFF)
        return forge_packet(
            src, src_qp, dst.lid, dst_qpn, dst_pkey, wrong, config.mtu_bytes
        )
    if inj.kind == "guessed_tag":
        fn_id = (
            auth_function_for(config.auth).ident
            if config.auth is not AuthMode.ICRC
            else 1
        )
        return forge_packet(
            src, src_qp, dst.lid, dst_qpn, dst_pkey, dst_qp.qkey,
            config.mtu_bytes, guessed_tag=param & 0xFFFFFFFF, auth_fn_id=fn_id,
        )
    if inj.kind == "truncated":
        pkt = forge_packet(
            src, src_qp, dst.lid, dst_qpn, dst_pkey, dst_qp.qkey, config.mtu_bytes
        )
        pkt.payload = pkt.payload[:-1]  # CRC already stamped: now stale
        return pkt
    raise ValueError(f"unknown injection kind {inj.kind!r}")


class _BloomShadowFilter:
    """Transparent SIF wrapper that drives a shadow :class:`BloomPortFilter`.

    Installed by ``execute_scenario(..., bloom_shadow=True)`` on a SIF
    scenario: the live SIF filter keeps making every real accept/drop
    decision while an identically-fed Bloom filter runs beside it, so the
    never-under-filters contract is checked on *exactly* the same packet and
    registration stream.  (Two separate simulations could not be compared
    packet-for-packet: closed-loop sources change their traffic the moment
    one drop decision differs.)  The shadow uses a private counter registry
    and no tracer, so the run's report and trace stay those of a plain SIF
    run — but its idle-check timers do add engine events, which is why a
    shadow leg is never differentially compared against the plain legs.
    """

    def __init__(self, sif: SIFPortFilter, bloom: BloomPortFilter) -> None:
        self.sif = sif
        self.bloom = bloom
        #: (packet_id, pkey_value, time_ps) for every packet SIF dropped
        #: but the Bloom filter would have passed — must stay empty.
        self.under_filtered: list[tuple[int, int, int]] = []

    def process(self, packet: DataPacket, now_ps: int) -> tuple[bool, float]:
        verdict = self.sif.process(packet, now_ps)
        bloom_ok, _ = self.bloom.process(packet, now_ps)
        if not verdict[0] and bloom_ok:
            self.under_filtered.append(
                (packet.packet_id, packet.pkey.value, now_ps)
            )
        return verdict

    def register_invalid(self, pkey: PKey, now_ps: int) -> None:
        self.sif.register_invalid(pkey, now_ps)
        self.bloom.register_invalid(pkey, now_ps)

    def __getattr__(self, name: str):
        return getattr(self.sif, name)


def execute_scenario(
    scenario: Scenario,
    mode: str,
    scheduler: str | None = None,
    observability: str | None = None,
    bloom_shadow: bool = False,
) -> FuzzRun:
    """Run *scenario* under datapath *mode*; restores the previous mode.

    *scheduler* (``"wheel"`` | ``"heap"``) and *observability* (``"on"`` |
    ``"off"``) pin those axes for this run when given; each is restored
    afterwards.  They default to the ambient modes.

    *bloom_shadow* wraps every installed SIF ingress filter in a
    :class:`_BloomShadowFilter` (sized by the scenario's ``bloom_bits`` /
    ``bloom_hashes``, default SimConfig values otherwise) so the
    ``bloom_dominance`` oracle can compare drop decisions on the identical
    stream; it has no effect on scenarios without SIF enforcement.
    """
    prev_mode = get_datapath()
    prev_sched = get_scheduler()
    prev_obs = get_observability()
    set_datapath(mode)
    if scheduler is not None:
        set_scheduler(scheduler)
    if observability is not None:
        set_observability(observability)
    try:
        base_seq = current_packet_seq()
        tracer = Tracer()
        config = scenario.build_config()
        tampered: set[int] = set()
        injected: set[int] = set()
        captured: dict[str, Fabric] = {}
        shadows: list[_BloomShadowFilter] = []

        def setup(engine, fabric: Fabric) -> None:
            captured["fabric"] = fabric
            injector = FaultInjector(fabric)
            links = {link.name: link for link in fabric.all_links()}

            # Faults are guarded: a link never double-fails (LinkFault and a
            # SwitchCrash may name the same link) and never "restores" while
            # up, so per-link link_down >= link_up holds by construction.
            def fail_if_up(link) -> None:
                if not link.failed:
                    injector.fail_link(link)

            def restore_if_down(link) -> None:
                if link.failed:
                    injector.restore_link(link)

            for fault in scenario.link_faults:
                link = links[fault.link]
                engine.schedule_at(round(fault.fail_us * PS_PER_US), fail_if_up, link)
                if fault.restore_us is not None:
                    engine.schedule_at(
                        round(fault.restore_us * PS_PER_US), restore_if_down, link
                    )
            for crash in scenario.switch_crashes:
                coords = (crash.x, crash.y)
                injector.crash_switch(coords, at_ps=round(crash.at_us * PS_PER_US))
                if crash.restore_us is not None:
                    injector.restore_switch(
                        coords, at_ps=round(crash.restore_us * PS_PER_US)
                    )

            ctx = MutationContext(
                valid_pkeys=tuple(sorted(
                    {p for hca in fabric.hcas.values() for p in hca.keys.pkeys},
                    key=lambda p: p.value,
                )),
                lids=tuple(fabric.lids),
            )
            by_link: dict[str, dict[int, object]] = {}
            for tamper in scenario.tampers:
                by_link.setdefault(tamper.link, {}).setdefault(tamper.ordinal, tamper)
            for name, plan in by_link.items():
                link = links[name]
                prev_tap = link.tap

                def tamper_tap(packet, _plan=plan, _prev=prev_tap, _seen=[0]) -> None:
                    if _prev is not None:
                        _prev(packet)
                    tamper = _plan.get(_seen[0])
                    _seen[0] += 1
                    if tamper is not None:
                        apply_mutation(packet, tamper.mutation, tamper.param, ctx)
                        tampered.add(packet.packet_id)

                link.tap = tamper_tap

            def fire_injection(inj: ForgedInject) -> None:
                packet = _build_injection(inj, fabric, config)
                injected.add(packet.packet_id)
                inject_raw(fabric.hca(inj.src_lid), packet)

            for inj in scenario.injections:
                engine.schedule_at(round(inj.at_us * PS_PER_US), fire_injection, inj)

            if bloom_shadow:
                for lid in fabric.lids:
                    sw = fabric.ingress_switch(lid)
                    port = fabric.ingress_port(lid)
                    filt = sw.filters[port]
                    if not isinstance(filt, SIFPortFilter):
                        continue
                    bloom = BloomPortFilter(
                        engine,
                        set(filt.partition_table),
                        filt.lookup_ns,
                        config.sif_idle_timeout_us,
                        bloom_bits=config.bloom_bits,
                        bloom_hashes=config.bloom_hashes,
                        salt=bloom_port_salt(filt.scope),
                        inpacket_tag=False,  # a SIF run stamps no tags
                        scope=f"shadow.{filt.scope}",
                    )
                    shadow = _BloomShadowFilter(filt, bloom)
                    sw.set_port_filter(port, shadow)
                    fabric.sm.registration_hooks[int(lid)] = shadow.register_invalid
                    shadows.append(shadow)

        report = run_simulation(config, tracer=tracer, setup=setup)
        return FuzzRun(
            scenario=scenario,
            mode=mode,
            report=report,
            tracer=tracer,
            fabric=captured["fabric"],
            base_seq=base_seq,
            tampered_ids=tampered,
            injected_ids=injected,
            bloom_shadows=shadows,
        )
    finally:
        set_datapath(prev_mode)
        set_scheduler(prev_sched)
        set_observability(prev_obs)


# -- single-run oracles -------------------------------------------------------


def check_conservation(run: FuzzRun) -> list[Violation]:
    """created == delivered + dropped + filtered + in-flight, fabric-wide."""
    r = run.report
    submitted = r.counter_total("hca.*.submitted")
    delivered = r.counter_total("hca.*.delivered")
    hca_drops = sum(r.counter_total(f"hca.*.{name}") for name in HCA_DROP_COUNTERS)
    switch_drops = r.counter_total("switch.*.filtered_drops") + r.counter_total(
        "switch.*.unroutable_drops"
    )
    in_flight = run.fabric.in_flight_count()
    accounted = delivered + hca_drops + switch_drops + in_flight
    if submitted != accounted:
        return [Violation(
            "conservation", run.mode,
            f"submitted={submitted} != delivered={delivered} + hca_drops={hca_drops}"
            f" + switch_drops={switch_drops} + in_flight={in_flight}"
            f" (= {accounted})",
        )]
    return []


def check_counter_trace(run: FuzzRun) -> list[Violation]:
    """Counter registry and trace bus must agree event-for-event."""
    out: list[Violation] = []
    r = run.report
    kinds = run.tracer.kinds()

    def expect(label: str, counter_value, event_count: int) -> None:
        if counter_value != event_count:
            out.append(Violation(
                "counter_trace", run.mode,
                f"{label}: counter={counter_value} trace_events={event_count}",
            ))

    expect("delivered", r.counter_total("hca.*.delivered"), kinds.get("delivered", 0))
    expect(
        "filtered", r.counter_total("switch.*.filtered_drops"), kinds.get("filtered", 0)
    )
    expect(
        "hca drops",
        sum(r.counter_total(f"hca.*.{name}") for name in HCA_DROP_COUNTERS),
        kinds.get("dropped", 0),
    )
    expect("traps", r.counter_total("hca.*.traps_sent"), kinds.get("trap_raised", 0))
    # SIF and Bloom filters register under the same filter.* counter scopes
    # but trace mode-specific kinds — the registry total must equal the sum.
    expect(
        "filter activations",
        r.counter_total("filter.*.activations"),
        kinds.get("sif_activated", 0) + kinds.get("bloom_activated", 0),
    )
    expect(
        "filter deactivations",
        r.counter_total("filter.*.deactivations"),
        kinds.get("sif_deactivated", 0) + kinds.get("bloom_deactivated", 0),
    )
    # submitted <= traced submits + raw injections (inject_raw emits no
    # 'created' event; a submit still inside auth.prepare's pipeline delay
    # at sim end is traced 'created' but never reached a send queue).
    submitted = r.counter_total("hca.*.submitted")
    created = kinds.get("created", 0) + len(run.injected_ids)
    if submitted > created:
        out.append(Violation(
            "counter_trace", run.mode,
            f"submitted: counter={submitted} > created+injected={created}",
        ))
    # reroute_buffered can drop unroutables without a trace event, so the
    # counter bounds the events rather than equalling them.
    unroutable = r.counter_total("switch.*.unroutable_drops")
    if unroutable < kinds.get("unroutable", 0):
        out.append(Violation(
            "counter_trace", run.mode,
            f"unroutable: counter={unroutable} < trace_events={kinds.get('unroutable', 0)}",
        ))
    ups: dict[str, int] = {}
    downs: dict[str, int] = {}
    for event in run.tracer.of_kind("link_down", "link_up"):
        (downs if event.kind == "link_down" else ups)[event.where] = (
            (downs if event.kind == "link_down" else ups).get(event.where, 0) + 1
        )
    for where, n_up in sorted(ups.items()):
        if n_up > downs.get(where, 0):
            out.append(Violation(
                "counter_trace", run.mode,
                f"link {where}: link_up x{n_up} > link_down x{downs.get(where, 0)}",
            ))
    return out


def check_sif_legality(run: FuzzRun) -> list[Violation]:
    """Trap-driven filter state machines (SIF and Bloom): activation needs a
    prior trap, each mode's events only appear under its own enforcement,
    and SIF's Invalid_P_Key_Table stays within the whitelist bound."""
    out: list[Violation] = []
    events = run.tracer.events
    enforcement = run.scenario.config.get("enforcement")
    traps = [e.time_ps for e in events if e.kind == "trap_raised"]
    first_trap = min(traps) if traps else None
    for kind, owner in (("sif_activated", "sif"), ("bloom_activated", "bloom")):
        activated = [e for e in events if e.kind == kind]
        if enforcement != owner:
            if activated:
                out.append(Violation(
                    "sif_legality", run.mode,
                    f"{kind} without {owner} enforcement"
                    f" ({len(activated)} events)",
                ))
            continue
        for event in activated:
            if first_trap is None or event.time_ps < first_trap:
                out.append(Violation(
                    "sif_legality", run.mode,
                    f"{event.where} activated at {event.time_ps}ps"
                    f" with no prior trap",
                ))
    for lid in run.fabric.lids:
        filt = run.fabric.ingress_switch(lid).filters[run.fabric.ingress_port(lid)]
        if isinstance(filt, SIFPortFilter):
            bound = max(1, len(filt.partition_table))
            if len(filt.invalid_table) > bound:
                out.append(Violation(
                    "sif_legality", run.mode,
                    f"{filt.scope}: invalid_table={len(filt.invalid_table)}"
                    f" exceeds whitelist bound {bound}",
                ))
        elif isinstance(filt, BloomPortFilter):
            # Constant-memory contract: the bit array never grows, and the
            # false-positive classifier can never exceed the drop count.
            if filt.bloom.memory_bytes != (filt.bloom.num_bits + 7) // 8:
                out.append(Violation(
                    "sif_legality", run.mode,
                    f"{filt.scope}: bloom memory {filt.bloom.memory_bytes}B"
                    f" deviates from fixed {(filt.bloom.num_bits + 7) // 8}B",
                ))
            if int(filt.false_positive_drops) > int(filt.drops):
                out.append(Violation(
                    "sif_legality", run.mode,
                    f"{filt.scope}: false_positive_drops="
                    f"{int(filt.false_positive_drops)} exceeds"
                    f" drops={int(filt.drops)}",
                ))
    return out


def check_auth_soundness(run: FuzzRun) -> list[Violation]:
    """No tampered or forged packet may ever be delivered as authentic."""
    bad = run.tampered_ids | run.injected_ids
    if not bad:
        return []
    out = []
    for event in run.tracer.of_kind("delivered"):
        if event.packet_id in bad:
            kind = "tampered" if event.packet_id in run.tampered_ids else "forged"
            out.append(Violation(
                "auth_soundness", run.mode,
                f"{kind} packet #{run.rel(event.packet_id)} delivered at"
                f" {event.where} ({event.time_ps}ps)",
            ))
    return out


def check_bloom_vs_sif(run: FuzzRun) -> list[Violation]:
    """The Bloom contract on a shadow leg: over-filtering allowed (and
    counted), under-filtering relative to SIF never.

    For every wrapped ingress port: (a) no packet SIF dropped was passed by
    the identically-fed Bloom filter, (b) the Bloom drop count therefore
    dominates SIF's, (c) every extra drop is classified — drops minus false
    positives never exceeds what exact state would have dropped."""
    out: list[Violation] = []
    for shadow in run.bloom_shadows:
        scope = shadow.sif.scope
        if shadow.under_filtered:
            pid, pkey, t = shadow.under_filtered[0]
            out.append(Violation(
                "bloom_dominance", run.mode,
                f"{scope}: bloom passed {len(shadow.under_filtered)} packets"
                f" SIF dropped — first packet #{run.rel(pid)}"
                f" pkey=0x{pkey:04x} at {t}ps",
            ))
        sif_drops = int(shadow.sif.drops)
        bloom_drops = int(shadow.bloom.drops)
        if bloom_drops < sif_drops:
            out.append(Violation(
                "bloom_dominance", run.mode,
                f"{scope}: bloom drops={bloom_drops} < sif drops={sif_drops}",
            ))
        fp = int(shadow.bloom.false_positive_drops)
        if fp > bloom_drops:
            out.append(Violation(
                "bloom_dominance", run.mode,
                f"{scope}: false_positive_drops={fp} exceeds drops={bloom_drops}",
            ))
    return out


ORACLES: dict[str, Callable[[FuzzRun], list[Violation]]] = {
    "conservation": check_conservation,
    "counter_trace": check_counter_trace,
    "sif_legality": check_sif_legality,
    "auth_soundness": check_auth_soundness,
}


def check_run(run: FuzzRun) -> list[Violation]:
    """Every single-run oracle over one execution."""
    out: list[Violation] = []
    for oracle in ORACLES.values():
        out.extend(oracle(run))
    return out


# -- differential oracle ------------------------------------------------------


def _normalized_trace(run: FuzzRun) -> list[tuple]:
    return [
        (e.time_ps, e.kind, e.where, run.rel(e.packet_id), e.detail)
        for e in run.tracer.events
    ]


def check_differential(
    fast: FuzzRun, reference: FuzzRun, oracle: str = "differential"
) -> list[Violation]:
    """*fast* and *reference* must be bit-identical in everything but
    wall-clock: full counter snapshot, per-class stats, drops, and the
    normalized event trace.

    The same check covers every differential axis — datapath fast vs
    reference, scheduler wheel vs heap — with *oracle* naming the axis in
    any violation (``differential`` | ``scheduler_differential``)."""
    out: list[Violation] = []

    fc, rc = fast.report.counters, reference.report.counters
    diff_keys = sorted(
        k for k in (fc.keys() | rc.keys()) if fc.get(k) != rc.get(k)
    )
    if diff_keys:
        shown = ", ".join(
            f"{k}: fast={fc.get(k)} ref={rc.get(k)}" for k in diff_keys[:5]
        )
        out.append(Violation(
            oracle, "differential",
            f"{len(diff_keys)} counters differ — {shown}",
        ))
    if fast.report.stats != reference.report.stats:
        out.append(Violation(
            oracle, "differential",
            f"class stats differ: fast={fast.report.stats}"
            f" ref={reference.report.stats}",
        ))
    if fast.report.drops != reference.report.drops:
        out.append(Violation(
            oracle, "differential",
            f"drop taxonomies differ: fast={fast.report.drops}"
            f" ref={reference.report.drops}",
        ))
    ft, rt = _normalized_trace(fast), _normalized_trace(reference)
    if ft != rt:
        detail = f"lengths fast={len(ft)} ref={len(rt)}"
        for i, (a, b) in enumerate(zip(ft, rt)):
            if a != b:
                detail = f"first divergence at event {i}: fast={a} ref={b}"
                break
        out.append(Violation(oracle, "differential", f"traces differ — {detail}"))
    return out


def check_observability_differential(on: FuzzRun, off: FuzzRun) -> list[Violation]:
    """An observability-disabled run must produce the identical *simulation*
    (per-class stats, drop taxonomy, events processed) while recording
    nothing: zero counters and an empty trace prove the no-op swap is
    actually in place rather than silently half-enabled."""
    out: list[Violation] = []
    if on.report.stats != off.report.stats:
        out.append(Violation(
            "observability_differential", "differential",
            f"class stats differ: on={on.report.stats} off={off.report.stats}",
        ))
    if on.report.drops != off.report.drops:
        out.append(Violation(
            "observability_differential", "differential",
            f"drop taxonomies differ: on={on.report.drops} off={off.report.drops}",
        ))
    if on.report.events_processed != off.report.events_processed:
        out.append(Violation(
            "observability_differential", "differential",
            f"event counts differ: on={on.report.events_processed}"
            f" off={off.report.events_processed}",
        ))
    live = {k: v for k, v in off.report.counters.items() if v}
    if live:
        shown = ", ".join(f"{k}={v}" for k, v in sorted(live.items())[:5])
        out.append(Violation(
            "observability_differential", "differential",
            f"disabled registry still recorded {len(live)} counters — {shown}",
        ))
    if off.tracer.events:
        out.append(Violation(
            "observability_differential", "differential",
            f"disabled run still traced {len(off.tracer.events)} events",
        ))
    return out


# -- sharded-engine differential ----------------------------------------------


def _delivery_key(report: SimReport) -> list[tuple] | None:
    """Order-independent exact delivery record: every sample as an integer
    tuple, canonically sorted.  Shards interleave same-picosecond deliveries
    differently than one engine would, so raw sample *order* (and therefore
    Welford float accumulation order) is outside the guarantee — the sorted
    integer tuples are not."""
    if report.metrics is None:
        return None
    return sorted(
        (s.delivered, s.created, int(s.source), int(s.destination),
         s.traffic_class)
        for s in report.metrics.samples
    )


def execute_sharded(
    scenario: Scenario, transport: str | None = None
) -> tuple[SimReport, SimReport]:
    """Run *scenario* single-process and sharded; return both reports.

    The scenario's config carries its shard count (``shards=2`` from
    :func:`~repro.fuzz.generators.generate_shard_scenario`); the
    single-process leg is the identical config with ``shards=1``.
    *transport* optionally overrides the scenario's ``shard_transport``.
    """
    from dataclasses import replace

    if scenario.link_faults or scenario.switch_crashes or scenario.tampers \
            or scenario.injections:
        raise ValueError(
            "sharded differential scenarios must not carry faults, tampers, "
            "or injections — those install through the single-process setup "
            "hook"
        )
    config = scenario.build_config()
    if transport is not None:
        config = replace(config, shard_transport=transport)
    single = run_simulation(replace(config, shards=1))
    sharded = run_simulation(config)
    return single, sharded


def check_shard_differential(
    single: SimReport, sharded: SimReport
) -> list[Violation]:
    """The sharded run must match the single-process oracle exactly on
    counter totals (``shard.*`` bookkeeping aside), the drop taxonomy,
    the delivered count, per-class delivery counts, and the full sorted
    delivery record."""
    oracle = "shard_differential"
    out: list[Violation] = []

    sc = single.counters
    hc = {
        k: v for k, v in sharded.counters.items()
        if not k.startswith("shard.")
    }
    diff_keys = sorted(
        k for k in (sc.keys() | hc.keys()) if sc.get(k) != hc.get(k)
    )
    if diff_keys:
        shown = ", ".join(
            f"{k}: single={sc.get(k)} sharded={hc.get(k)}"
            for k in diff_keys[:5]
        )
        out.append(Violation(
            oracle, "sharded",
            f"{len(diff_keys)} counters differ — {shown}",
        ))
    if single.drops != sharded.drops:
        out.append(Violation(
            oracle, "sharded",
            f"drop taxonomies differ: single={single.drops}"
            f" sharded={sharded.drops}",
        ))
    if single.delivered != sharded.delivered:
        out.append(Violation(
            oracle, "sharded",
            f"delivered differ: single={single.delivered}"
            f" sharded={sharded.delivered}",
        ))
    single_counts = {c: s.count for c, s in single.stats.items()}
    sharded_counts = {c: s.count for c, s in sharded.stats.items()}
    if single_counts != sharded_counts:
        out.append(Violation(
            oracle, "sharded",
            f"per-class delivery counts differ: single={single_counts}"
            f" sharded={sharded_counts}",
        ))
    if _delivery_key(single) != _delivery_key(sharded):
        out.append(Violation(
            oracle, "sharded",
            "delivery records differ (sorted per-sample timing tuples)",
        ))
    return out


# -- full scenario verdict ----------------------------------------------------


@dataclass
class ScenarioResult:
    """Verdict of one scenario across every differential axis.

    ``reference``/``fast`` are the two datapath legs (both under the
    ``wheel`` scheduler); ``heap`` re-runs the fast datapath on the binary
    heap oracle scheduler, and ``obs_off`` with observability disabled.
    ``bloom_shadow`` (SIF scenarios only) re-runs with shadow Bloom filters
    riding the SIF ingress ports for the dominance oracle — its extra
    shadow-timer events exclude it from the differential comparisons."""

    scenario: Scenario
    violations: list[Violation]
    reference: FuzzRun | None = None
    fast: FuzzRun | None = None
    heap: FuzzRun | None = None
    obs_off: FuzzRun | None = None
    bloom_shadow: FuzzRun | None = None

    @property
    def ok(self) -> bool:
        return not self.violations


def run_scenario(scenario: Scenario) -> ScenarioResult:
    """Execute a scenario across all four legs and run every oracle.

    Legs: reference datapath, fast datapath (both on the ``wheel``
    scheduler — the scale core is what ships), fast datapath on the
    ``heap`` oracle scheduler, and fast datapath with observability
    disabled.  The differential oracles require the first three to be
    bit-identical in counters/stats/drops/trace, and the obs-off leg to be
    the identical simulation with provably empty instrumentation.
    """
    reference = execute_scenario(scenario, "reference", scheduler="wheel")
    fast = execute_scenario(scenario, "fast", scheduler="wheel")
    heap = execute_scenario(scenario, "fast", scheduler="heap")
    obs_off = execute_scenario(scenario, "fast", scheduler="wheel", observability="off")
    violations = (
        check_run(reference)
        + check_run(fast)
        + check_run(heap)
        + check_differential(fast, reference)
        + check_differential(fast, heap, oracle="scheduler_differential")
        + check_observability_differential(fast, obs_off)
    )
    shadow = None
    if scenario.config.get("enforcement") == "sif":
        shadow = execute_scenario(
            scenario, "fast", scheduler="wheel", bloom_shadow=True
        )
        violations += check_run(shadow) + check_bloom_vs_sif(shadow)
    return ScenarioResult(
        scenario=scenario, violations=violations, reference=reference, fast=fast,
        heap=heap, obs_off=obs_off, bloom_shadow=shadow,
    )
