"""Latency statistics for the paper's two headline metrics.

The paper measures, per traffic class:

* **queuing time** — how long a packet waits in the HCA send queue before
  the fabric accepts it (credit-based flow control pushes congestion back to
  the source, so this is where DoS damage shows up — Figure 1);
* **network latency** — injection into the fabric until delivery at the
  destination HCA.

Both are accumulated with Welford's online algorithm (mean + unbiased
stddev without storing samples) *and* optionally as raw samples, because
Figures 5/6 discuss standard deviations explicitly and the "excluding the
attacking period" analysis needs time-windowed re-aggregation.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.sim.engine import PS_PER_US


@dataclass
class LatencySample:
    """One delivered packet's timing record (all times in ps)."""

    created: int
    injected: int
    delivered: int
    traffic_class: str
    source: int
    destination: int

    @property
    def queuing_ps(self) -> int:
        return self.injected - self.created

    @property
    def network_ps(self) -> int:
        return self.delivered - self.injected


class StatAccumulator:
    """Online mean/stddev/min/max accumulator (Welford)."""

    __slots__ = ("count", "_mean", "_m2", "min", "max")

    def __init__(self) -> None:
        self.count = 0
        self._mean = 0.0
        self._m2 = 0.0
        self.min = math.inf
        self.max = -math.inf

    def add(self, x: float) -> None:
        self.count += 1
        delta = x - self._mean
        self._mean += delta / self.count
        self._m2 += delta * (x - self._mean)
        if x < self.min:
            self.min = x
        if x > self.max:
            self.max = x

    @property
    def mean(self) -> float:
        return self._mean if self.count else 0.0

    @property
    def variance(self) -> float:
        """Unbiased sample variance."""
        return self._m2 / (self.count - 1) if self.count > 1 else 0.0

    @property
    def stddev(self) -> float:
        return math.sqrt(self.variance)

    def merge(self, other: "StatAccumulator") -> None:
        """Fold *other*'s observations into this accumulator (Chan et al.)."""
        if other.count == 0:
            return
        if self.count == 0:
            self.count = other.count
            self._mean = other._mean
            self._m2 = other._m2
            self.min = other.min
            self.max = other.max
            return
        total = self.count + other.count
        delta = other._mean - self._mean
        self._m2 += other._m2 + delta * delta * self.count * other.count / total
        self._mean += delta * other.count / total
        self.count = total
        self.min = min(self.min, other.min)
        self.max = max(self.max, other.max)


@dataclass
class MetricsSummary:
    """Serializable (picklable) snapshot of a run's delivered samples.

    :class:`MetricsCollector` is a *live* object wired into every HCA; a
    :class:`~repro.sim.runner.SimReport` that crosses a process boundary
    (parallel sweeps, the run cache) carries this summary instead.  It
    supports the same time-windowed re-aggregation the paper's
    "excluding the attacking period" analysis needs.
    """

    samples: list[LatencySample] = field(default_factory=list)

    def classes(self) -> list[str]:
        return sorted({s.traffic_class for s in self.samples})

    def windowed(
        self,
        traffic_class: str,
        exclude: list[tuple[int, int]] | None = None,
    ) -> tuple[StatAccumulator, StatAccumulator]:
        """(queuing, network) accumulators over samples whose *injection*
        time falls outside every ``exclude`` window (ps intervals)."""
        exclude = exclude or []
        q, n = StatAccumulator(), StatAccumulator()
        for s in self.samples:
            if s.traffic_class != traffic_class:
                continue
            t = s.injected
            if any(lo <= t < hi for lo, hi in exclude):
                continue
            q.add(s.queuing_ps)
            n.add(s.network_ps)
        return q, n

    def values_us(
        self,
        traffic_class: str,
        kind: str = "total",
        exclude: list[tuple[int, int]] | None = None,
    ) -> list[float]:
        """Per-delivery latency values in µs, for percentile readouts.

        *kind* selects ``"queuing"``, ``"network"``, or their ``"total"``;
        *exclude* windows (ps, on injection time) work as in
        :meth:`windowed`.  Order follows delivery order — sort (or hand to
        :func:`repro.sim.stats.percentile`) before reading quantiles.
        """
        if kind not in ("queuing", "network", "total"):
            raise ValueError("kind must be 'queuing', 'network', or 'total'")
        exclude = exclude or []
        out: list[float] = []
        for s in self.samples:
            if s.traffic_class != traffic_class:
                continue
            t = s.injected
            if any(lo <= t < hi for lo, hi in exclude):
                continue
            if kind == "queuing":
                ps = s.queuing_ps
            elif kind == "network":
                ps = s.network_ps
            else:
                ps = s.queuing_ps + s.network_ps
            out.append(ps / PS_PER_US)
        return out


@dataclass
class MetricsCollector:
    """Collects delivered-packet samples and summarizes per traffic class.

    ``keep_samples=True`` retains every :class:`LatencySample` so analyses
    can slice by time window (e.g. drop the attack-active periods, as the
    paper does when quoting 14.19 µs vs 13.65 µs for IF vs SIF).
    """

    keep_samples: bool = True
    samples: list[LatencySample] = field(default_factory=list)
    delivered: int = 0
    dropped: dict[str, int] = field(default_factory=dict)
    _queuing: dict[str, StatAccumulator] = field(default_factory=dict)
    _network: dict[str, StatAccumulator] = field(default_factory=dict)

    def record_delivery(self, sample: LatencySample) -> None:
        self.delivered += 1
        if self.keep_samples:
            self.samples.append(sample)
        cls = sample.traffic_class
        self._queuing.setdefault(cls, StatAccumulator()).add(sample.queuing_ps)
        self._network.setdefault(cls, StatAccumulator()).add(sample.network_ps)

    def record_drop(self, reason: str) -> None:
        self.dropped[reason] = self.dropped.get(reason, 0) + 1

    # -- summaries ---------------------------------------------------------

    def classes(self) -> list[str]:
        return sorted(set(self._queuing) | set(self._network))

    def count(self, traffic_class: str) -> int:
        """Delivered-packet count for *traffic_class* (0 when unseen).

        Public accessor so report builders never index ``_queuing``
        directly — a class observed on only one of the two accumulators
        (e.g. network-only samples merged in externally) must not KeyError.
        """
        q = self._queuing.get(traffic_class)
        n = self._network.get(traffic_class)
        return max(q.count if q else 0, n.count if n else 0)

    def queuing_us(self, traffic_class: str) -> float:
        """Mean queuing time in microseconds for *traffic_class*."""
        acc = self._queuing.get(traffic_class)
        return acc.mean / PS_PER_US if acc else 0.0

    def network_us(self, traffic_class: str) -> float:
        """Mean network latency in microseconds for *traffic_class*."""
        acc = self._network.get(traffic_class)
        return acc.mean / PS_PER_US if acc else 0.0

    def queuing_std_us(self, traffic_class: str) -> float:
        acc = self._queuing.get(traffic_class)
        return acc.stddev / PS_PER_US if acc else 0.0

    def network_std_us(self, traffic_class: str) -> float:
        acc = self._network.get(traffic_class)
        return acc.stddev / PS_PER_US if acc else 0.0

    def total_delay_us(self, traffic_class: str) -> float:
        """Queuing + network mean delay in µs — the Figure 5 bar height."""
        return self.queuing_us(traffic_class) + self.network_us(traffic_class)

    def windowed(
        self,
        traffic_class: str,
        exclude: list[tuple[int, int]] | None = None,
    ) -> tuple[StatAccumulator, StatAccumulator]:
        """(queuing, network) accumulators over samples whose *injection*
        time falls outside every ``exclude`` window (ps intervals).

        Requires ``keep_samples=True``.  This reproduces the paper's
        "if we exclude the attacking period" comparison.
        """
        if not self.keep_samples:
            raise RuntimeError("windowed() needs keep_samples=True")
        return self.summary().windowed(traffic_class, exclude)

    def summary(self) -> MetricsSummary:
        """Detach a picklable :class:`MetricsSummary` from this live
        collector (requires ``keep_samples=True``)."""
        if not self.keep_samples:
            raise RuntimeError("summary() needs keep_samples=True")
        return MetricsSummary(samples=list(self.samples))
