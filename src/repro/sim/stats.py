"""Cross-seed Monte Carlo statistics for sweep results.

One simulation run is a single draw from the scenario's seed distribution;
the paper's own Figure-5/6 discussion ("the standard deviation blows up in
the 60-70 % regime") is a statement about that distribution, not about any
one trace.  This module provides the three aggregations a multi-seed sweep
point needs, all dependency-free:

* **pooling** — fold per-run :class:`~repro.sim.metrics.StatAccumulator`
  instances into one via Chan et al.'s merge, so the pooled variance is the
  variance of the *concatenated* samples (averaging per-seed stddevs, the
  bug this module replaced, understates cross-seed variance because it
  discards the between-seed mean spread);
* **confidence intervals** — two-sided Student-t intervals on per-seed
  means, the standard Monte-Carlo error bar (each seed is one i.i.d.
  replication; the t correction matters at the 2-10 seed counts sweeps use);
* **percentiles** — linear-interpolation quantiles over kept samples, for
  risk-style readouts such as "P99 best-effort latency under attack".
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.sim.metrics import StatAccumulator

#: Two-sided Student-t critical values, indexed [confidence][df] for
#: df 1..30; the last entry of each row is the asymptotic normal quantile
#: used for every larger df (the error is < 0.7 % already at df = 30).
_T_TABLE: dict[float, tuple[float, ...]] = {
    0.90: (
        6.314, 2.920, 2.353, 2.132, 2.015, 1.943, 1.895, 1.860, 1.833,
        1.812, 1.796, 1.782, 1.771, 1.761, 1.753, 1.746, 1.740, 1.734,
        1.729, 1.725, 1.721, 1.717, 1.714, 1.711, 1.708, 1.706, 1.703,
        1.701, 1.699, 1.697, 1.645,
    ),
    0.95: (
        12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262,
        2.228, 2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101,
        2.093, 2.086, 2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052,
        2.048, 2.045, 2.042, 1.960,
    ),
    0.99: (
        63.657, 9.925, 5.841, 4.604, 4.032, 3.707, 3.499, 3.355, 3.250,
        3.169, 3.106, 3.055, 3.012, 2.977, 2.947, 2.921, 2.898, 2.878,
        2.861, 2.845, 2.831, 2.819, 2.807, 2.797, 2.787, 2.779, 2.771,
        2.763, 2.756, 2.750, 2.576,
    ),
}


def t_critical(df: int, confidence: float = 0.95) -> float:
    """Two-sided Student-t critical value for *df* degrees of freedom.

    Tabulated for the three conventional confidence levels (0.90, 0.95,
    0.99); df > 30 uses the asymptotic normal quantile.
    """
    if df < 1:
        raise ValueError("need at least 1 degree of freedom")
    row = _T_TABLE.get(round(confidence, 2))
    if row is None:
        raise ValueError(
            f"unsupported confidence {confidence!r} "
            f"(tabulated: {sorted(_T_TABLE)})"
        )
    return row[min(df, len(row)) - 1]


@dataclass(frozen=True)
class ConfidenceInterval:
    """A two-sided mean estimate: ``mean`` ± ``half`` at ``confidence``."""

    mean: float
    half: float  #: half-width; 0.0 when only one replication exists.
    confidence: float
    n: int  #: replications (per-seed means) behind the estimate.

    @property
    def lo(self) -> float:
        return self.mean - self.half

    @property
    def hi(self) -> float:
        return self.mean + self.half

    def __str__(self) -> str:
        return f"{self.mean:.2f} ± {self.half:.2f} ({self.confidence:.0%}, n={self.n})"


def mean_ci(
    values: Sequence[float], confidence: float = 0.95
) -> ConfidenceInterval:
    """Student-t confidence interval on the mean of *values*.

    *values* are the per-replication (per-seed) means — one number per
    independent run.  A single replication yields a degenerate interval
    (half-width 0) rather than an error: callers render it as a bar with
    no whisker.
    """
    if not values:
        raise ValueError("mean_ci needs at least one value")
    n = len(values)
    mean = sum(values) / n
    if n == 1:
        return ConfidenceInterval(mean=mean, half=0.0, confidence=confidence, n=1)
    var = sum((v - mean) ** 2 for v in values) / (n - 1)
    half = t_critical(n - 1, confidence) * math.sqrt(var / n)
    return ConfidenceInterval(mean=mean, half=half, confidence=confidence, n=n)


def pooled(accumulators: Iterable[StatAccumulator]) -> StatAccumulator:
    """Fold accumulators into one — the statistics of the concatenation.

    Chan et al.'s pairwise merge keeps the pooled variance exactly equal to
    Welford over all underlying samples in one stream, including the
    between-group term that per-group averaging drops.
    """
    out = StatAccumulator()
    for acc in accumulators:
        out.merge(acc)
    return out


def percentile(values: Sequence[float], q: float) -> float:
    """The *q*-th percentile (0..100) by linear interpolation.

    Matches numpy's default ("linear") method: rank ``q/100 * (n-1)``
    interpolated between the two nearest order statistics.
    """
    if not values:
        raise ValueError("percentile needs at least one value")
    if not 0.0 <= q <= 100.0:
        raise ValueError("q must be in [0, 100]")
    ordered = sorted(values)
    rank = q / 100.0 * (len(ordered) - 1)
    lo = math.floor(rank)
    hi = math.ceil(rank)
    if lo == hi:
        return ordered[lo]
    frac = rank - lo
    return ordered[lo] * (1.0 - frac) + ordered[hi] * frac
