"""Sharded parallel engine: space-partitioned fat-tree simulation.

One :class:`ShardRuntime` per shard builds the **identical full fabric**
(every RNG stream is named globally or per-LID, so replicas agree
bit-for-bit), then performs boundary surgery:

* traffic sources and flooders are constructed only for the shard's owned
  LIDs (``build_experiment(only_lids=...)``);
* every cross-shard link — by construction exactly the agg↔core links whose
  pod group and core belong to different shards (:class:`~repro.sim.
  partition.ShardPlan`) — has its sender half retargeted: when serialization
  completes, the packet is posted to the receiving shard as a timestamped
  message that fires at the exact single-process arrival instant
  (completion time + wire flight);
* the receiving side's stand-in for such a link is a credit proxy, so
  flow-control credits travel back as messages firing at the exact
  single-process return time;
* SM control traffic is routed through the designated **SM shard** (shard
  0): remote HCAs' trap sinks count locally and post the trap MAD with the
  management-VL transit as its delay, and the SM's registration hooks for
  remote offenders post back to the offender's shard, which applies the
  registration to its own (owned) ingress filter at the same instant.

Synchronization is conservative (null-message/CMB style), synchronous
rounds: each round delivers pending messages, collects every shard's
**earliest output time** ``EOT = t_next + L`` (``t_next`` the earliest
pending event, ``L`` the lookahead of :func:`~repro.sim.partition.
lookahead_ps`), and advances every shard inclusively to ``min(EOT)``.
Safety: every cross-shard message fires at least ``L`` after the event
that emits it, and every event processed in a round is at or after that
shard's ``t_next`` — so nothing can arrive before a receiver's new clock.
The one zero-delay emission — a filter registration, issued inside the
SM's trap processing — is covered by dropping the SM shard's lookahead to
zero while its trap queue is busy (processing steps are ``processing_ps``
apart, which is folded into ``L``, so a freshly started chain is covered
too).  An empty shard reports no constraint at all: messages delivered to
it re-enter the EOT computation before anyone advances, so it cannot stall
its neighbors and cannot be overrun.

The single-process engine stays the bit-exact oracle; a sharded run matches
it on counter totals and delivery stats for **shard-safe scenarios** (see
DESIGN.md §3j — no fault/tamper/injection hooks, no key management), with
same-picosecond event interleaving the only tolerated difference.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field

from repro.iba.link import Link
from repro.iba.topology import FT_AGG, FT_CORE
from repro.sim.config import SimConfig
from repro.sim.counters import CounterRegistry
from repro.sim.engine import PS_PER_US
from repro.sim.metrics import LatencySample, MetricsSummary, StatAccumulator
from repro.sim.partition import ShardPlan, lookahead_ps

#: cross-shard message kinds: (fire_ps, kind, a, b) tuples.
_PKT, _CREDIT, _TRAP, _REGISTER = 0, 1, 2, 3

#: live runtime per engine object — boundary links look their shard up here
#: (``Link`` is slotted, so per-instance state cannot live on the link).
_ENGINE_RUNTIME: dict[int, "ShardRuntime"] = {}


class ShardCrashError(RuntimeError):
    """A shard worker process died mid-run (its pipe went EOF)."""

    def __init__(self, shard: int) -> None:
        super().__init__(f"shard {shard} worker crashed mid-run")
        self.shard = shard


class _BoundaryLink(Link):
    """Sender half of a cross-shard link.

    Identical layout to :class:`~repro.iba.link.Link` (``__class__`` is
    swapped in place after the fabric is built), except transmission
    completion hands the packet to the synchronizer with the wire flight
    still ahead of it — that remaining delay is the link's contribution to
    the conservative lookahead.
    """

    __slots__ = ()

    def _complete(self, packet) -> None:
        self.busy = False
        self._in_transit -= 1
        _ENGINE_RUNTIME[id(self.engine)].post_packet(self.name, packet)
        if self.on_free is not None:
            self.on_free()


class _CreditProxy:
    """Receiver-side stand-in for a cross-shard link's upstream half.

    Switches only ever call ``schedule_credit`` on their in-links; the
    proxy turns that into a CREDIT message firing at the exact instant the
    real link's ``return_credit`` would have run.
    """

    __slots__ = ("runtime", "link_name", "dst_shard")

    def __init__(self, runtime: "ShardRuntime", link_name: str, dst_shard: int) -> None:
        self.runtime = runtime
        self.link_name = link_name
        self.dst_shard = dst_shard

    def schedule_credit(self, delay: int, vl: int) -> None:
        rt = self.runtime
        rt.post(self.dst_shard, rt.engine.now + delay, _CREDIT, self.link_name, vl)


@dataclass
class ShardResult:
    """Everything one shard contributes to the merged report (picklable)."""

    shard: int
    counters: dict[str, int | float]
    kinds: dict[str, str]
    delivered: int
    drops: dict[str, int]
    senders: dict[str, int]
    events_processed: int
    busy_seconds: float
    attack_windows: list[tuple[int, int]]
    #: (created, injected, delivered, class, source, destination) tuples
    #: when the run keeps samples, else None.
    samples: list[tuple] | None = None
    #: class -> (count, mean, m2, min, max) Welford state, queuing/network.
    queuing_acc: dict[str, tuple] = field(default_factory=dict)
    network_acc: dict[str, tuple] = field(default_factory=dict)


class ShardRuntime:
    """One shard: a full-fabric replica plus its boundary machinery."""

    def __init__(self, config: SimConfig, shard_id: int) -> None:
        from repro.sim.runner import build_experiment

        self.config = config
        self.shard_id = shard_id
        self.plan = ShardPlan(config.fat_tree_k, config.shards)
        self.owned = self.plan.owned_lids(shard_id)
        (
            self.engine,
            self.fabric,
            self.sources,
            self.flooders,
            self.windows,
            _key_manager,
        ) = build_experiment(config, only_lids=self.owned)
        sm = self.fabric.sm
        self.lookahead = min(lookahead_ps(config), sm.processing_ps)
        #: messages emitted since the last advance: (dst_shard, msg) pairs.
        self.outgoing: list[tuple[int, tuple]] = []
        self.busy_seconds = 0.0
        registry = self.fabric.registry
        self.msgs_in = registry.counter(f"shard.{shard_id}.messages_in")
        self.msgs_out = registry.counter(f"shard.{shard_id}.messages_out")
        #: boundary-link name -> (receiving shard, remaining wire delay).
        self._pkt_route: dict[str, tuple[int, int]] = {}
        #: boundary-link name -> (receiving switch, port) on this shard.
        self._in_map: dict[str, tuple] = {}
        #: boundary-link name -> owned sender-half Link (credit returns).
        self._out_links: dict[str, Link] = {}
        self._rewire_boundaries()
        self._rewire_sm()
        _ENGINE_RUNTIME[id(self.engine)] = self

    # --- construction -----------------------------------------------------

    def _rewire_boundaries(self) -> None:
        half = self.config.fat_tree_k // 2
        switches = self.fabric.switches
        plan = self.plan
        for pod, a, core, core_port in plan.boundary_pairs():
            pod_shard = plan.shard_of_pod(pod)
            core_shard = plan.shard_of_core(core)
            agg = switches[(FT_AGG, pod * half + a)]
            cor = switches[(FT_CORE, core)]
            agg_port = half + (core - a * half)
            up = agg.out_links[agg_port]  # agg -> core
            down = cor.out_links[core_port]  # core -> agg
            if self.shard_id == pod_shard:
                up.__class__ = _BoundaryLink
                self._pkt_route[up.name] = (core_shard, up.wire_delay_ps)
                self._out_links[up.name] = up
                agg.in_links[agg_port] = _CreditProxy(self, down.name, core_shard)
                self._in_map[down.name] = (agg, agg_port)
            elif self.shard_id == core_shard:
                down.__class__ = _BoundaryLink
                self._pkt_route[down.name] = (pod_shard, down.wire_delay_ps)
                self._out_links[down.name] = down
                cor.in_links[core_port] = _CreditProxy(self, up.name, pod_shard)
                self._in_map[up.name] = (cor, core_port)
            # a boundary between two *other* shards: inert replica, untouched

    def _rewire_sm(self) -> None:
        sm = self.fabric.sm
        plan = self.plan
        if self.shard_id != plan.SM_SHARD:
            for lid in self.owned:
                self.fabric.hca(lid).trap_sink = self._remote_trap
            return
        for lid in list(sm.registration_hooks):
            offender_shard = plan.shard_of_lid(lid)
            if offender_shard != self.shard_id:
                sm.registration_hooks[lid] = self._register_poster(
                    lid, offender_shard
                )

    def _remote_trap(self, trap) -> None:
        # mirrors SubnetManager.submit_trap: count at the reporter's side,
        # then pay the management-VL transit as the message delay
        sm = self.fabric.sm
        sm.traps_received.inc()
        self.post(
            self.plan.SM_SHARD,
            self.engine.now + sm.trap_latency_ps,
            _TRAP,
            trap,
            0,
        )

    def _register_poster(self, lid: int, offender_shard: int):
        def poster(pkey, now_ps: int) -> None:
            self.post(offender_shard, now_ps, _REGISTER, lid, pkey)

        return poster

    # --- message plane ----------------------------------------------------

    def post(self, dst_shard: int, fire: int, kind: int, a, b) -> None:
        self.msgs_out.inc()
        self.outgoing.append((dst_shard, (fire, kind, a, b)))

    def post_packet(self, link_name: str, packet) -> None:
        dst_shard, wire_ps = self._pkt_route[link_name]
        self.post(dst_shard, self.engine.now + wire_ps, _PKT, link_name, packet)

    def _dispatch(self, kind: int, a, b) -> None:
        if kind == _PKT:
            switch, port = self._in_map[a]
            switch.receive(b, port)
        elif kind == _CREDIT:
            self._out_links[a].return_credit(b)
        elif kind == _TRAP:
            self.fabric.sm._arrive(a)
        else:  # _REGISTER — apply to this shard's own ingress filter
            self.fabric.sm.registration_hooks[int(a)](b, self.engine.now)

    # --- round interface --------------------------------------------------

    def deliver_and_eot(self, msgs: list[tuple]) -> int | None:
        """Schedule the round's inbound messages, then report the earliest
        time this shard could emit a message if allowed to run ahead."""
        engine = self.engine
        for fire, kind, a, b in msgs:
            self.msgs_in.inc()
            engine.schedule_at(fire, self._dispatch, kind, a, b)
        t_next = engine.peek_time()
        if t_next is None:
            return None  # nothing pending: nothing to emit, no constraint
        if self.fabric.sm._busy:
            # a trap-processing step is pending; it emits registrations
            # with zero residual delay, so no lookahead may be added
            return t_next
        return t_next + self.lookahead

    def advance(self, target: int) -> tuple[list[tuple[int, tuple]], float]:
        """Run this shard inclusively to *target*; return emitted messages
        and the wall-clock busy time of the step."""
        t0 = time.perf_counter()
        self.engine.run(until=target)
        busy = time.perf_counter() - t0
        self.busy_seconds += busy
        out = self.outgoing
        self.outgoing = []
        return out, busy

    def result(self) -> ShardResult:
        metrics = self.fabric.metrics
        samples = None
        if self.config.keep_samples:
            samples = [
                (
                    s.created,
                    s.injected,
                    s.delivered,
                    s.traffic_class,
                    int(s.source),
                    int(s.destination),
                )
                for s in metrics.samples
            ]
        def pack(acc: StatAccumulator) -> tuple:
            return (acc.count, acc._mean, acc._m2, acc.min, acc.max)

        senders = {"best_effort": 0, "realtime": 0}
        from repro.sim.traffic import BestEffortSource, RealtimeSource

        for src in self.sources:
            if isinstance(src, BestEffortSource):
                senders["best_effort"] += 1
            elif isinstance(src, RealtimeSource):
                senders["realtime"] += 1
        registry = self.fabric.registry
        return ShardResult(
            shard=self.shard_id,
            counters=registry.snapshot(),
            kinds=registry.kinds(),
            delivered=metrics.delivered,
            drops=dict(metrics.dropped),
            senders=senders,
            events_processed=self.engine.events_processed,
            busy_seconds=self.busy_seconds,
            attack_windows=list(self.windows),
            samples=samples,
            queuing_acc={c: pack(a) for c, a in metrics._queuing.items()},
            network_acc={c: pack(a) for c, a in metrics._network.items()},
        )

    def close(self) -> None:
        _ENGINE_RUNTIME.pop(id(self.engine), None)


# --- transports -----------------------------------------------------------


class _InlineDriver:
    """All shards in this process — deterministic and 1-core friendly."""

    def __init__(self, config: SimConfig, shard_id: int, crash_at=None) -> None:
        self.runtime = ShardRuntime(config, shard_id)

    def deliver_and_eot(self, msgs):
        return self.runtime.deliver_and_eot(msgs)

    def advance(self, target):
        return self.runtime.advance(target)

    def result(self):
        return self.runtime.result()

    def close(self) -> None:
        self.runtime.close()


def _shard_worker(config: SimConfig, shard_id: int, conn, crash_at) -> None:
    """Process-transport worker: build one shard, serve round commands."""
    from repro.iba.packet import reset_packet_seq

    # disjoint packet-id ranges per worker — ids key switch pipeline maps
    # and must stay unique once packets cross shards
    reset_packet_seq((shard_id + 1) << 48)
    runtime = ShardRuntime(config, shard_id)
    if crash_at is not None and crash_at[0] == shard_id:
        # test hook: die without ceremony at a simulated instant, the way
        # an OOM-killed or segfaulted worker would
        runtime.engine.schedule_at(crash_at[1], os._exit, 1)
    try:
        while True:
            cmd = conn.recv()
            op = cmd[0]
            if op == "sync":
                conn.send(runtime.deliver_and_eot(cmd[1]))
            elif op == "advance":
                conn.send(runtime.advance(cmd[1]))
            else:  # "finish"
                conn.send(runtime.result())
                return
    except EOFError:
        return
    finally:
        conn.close()


class _ProcessDriver:
    """Parent-side proxy for one forked shard worker."""

    def __init__(self, config: SimConfig, shard_id: int, crash_at=None) -> None:
        import multiprocessing as mp

        ctx = mp.get_context("fork")
        self.shard_id = shard_id
        self.conn, child = ctx.Pipe()
        self.proc = ctx.Process(
            target=_shard_worker,
            args=(config, shard_id, child, crash_at),
            daemon=True,
        )
        self.proc.start()
        child.close()

    def _recv(self):
        try:
            return self.conn.recv()
        except (EOFError, ConnectionResetError, OSError) as exc:
            raise ShardCrashError(self.shard_id) from exc

    def deliver_and_eot(self, msgs):
        self.conn.send(("sync", msgs))
        return self._recv()

    def advance(self, target):
        self.conn.send(("advance", target))
        return self._recv()

    def result(self):
        self.conn.send(("finish",))
        return self._recv()

    def close(self) -> None:
        self.conn.close()
        if self.proc.is_alive():
            self.proc.terminate()
        self.proc.join(timeout=5)


# --- coordinator ----------------------------------------------------------


def _run_rounds(drivers: list, end_ps: int) -> int:
    """Synchronous conservative rounds until every shard is quiescent past
    *end_ps*.  Returns the number of advance rounds executed."""
    n = len(drivers)
    inboxes: list[list[tuple]] = [[] for _ in range(n)]
    rounds = 0
    while True:
        moved = any(inboxes)
        eots = []
        for driver, box in zip(drivers, inboxes):
            box.sort(key=lambda m: m[0])  # stable: ties keep shard order
            eots.append(driver.deliver_and_eot(box))
        inboxes = [[] for _ in range(n)]
        live = [e for e in eots if e is not None]
        if not moved and (not live or min(live) > end_ps):
            break
        target = min(min(live), end_ps) if live else end_ps
        rounds += 1
        for driver in drivers:
            out, _busy = driver.advance(target)
            for dst, msg in out:
                inboxes[dst].append(msg)
    for driver in drivers:
        driver.advance(end_ps)  # align every clock with the single-process end
    return rounds


def _merge_results(
    config: SimConfig,
    results: list[ShardResult],
    wall: float,
    rounds: int,
):
    """Fold per-shard results into one schema-compatible SimReport."""
    from repro.sim.runner import ClassStats, SimReport

    merged = CounterRegistry(enabled=True)
    for r in results:
        merged.merge(CounterRegistry.from_snapshot(r.counters, r.kinds))

    drops: dict[str, int] = {}
    senders: dict[str, int] = {}
    for r in results:
        for key in sorted(r.drops):
            drops[key] = drops.get(key, 0) + r.drops[key]
        for key, count in r.senders.items():
            senders[key] = senders.get(key, 0) + count

    queuing: dict[str, StatAccumulator] = {}
    network: dict[str, StatAccumulator] = {}

    def unpack(state: tuple) -> StatAccumulator:
        acc = StatAccumulator()
        acc.count, acc._mean, acc._m2, acc.min, acc.max = state
        return acc

    summary = None
    if config.keep_samples:
        # canonical order makes the merged statistics deterministic no
        # matter how deliveries interleaved across shards
        rows = sorted(
            (row for r in results for row in r.samples),
            key=lambda t: (t[2], t[0], t[4], t[5], t[3]),
        )
        samples = [LatencySample(*row) for row in rows]
        summary = MetricsSummary(samples=samples)
        for s in samples:
            cls = s.traffic_class
            queuing.setdefault(cls, StatAccumulator()).add(s.queuing_ps)
            network.setdefault(cls, StatAccumulator()).add(s.network_ps)
    else:
        for r in results:  # fixed shard order keeps the Chan merge stable
            for cls, state in r.queuing_acc.items():
                queuing.setdefault(cls, StatAccumulator()).merge(unpack(state))
            for cls, state in r.network_acc.items():
                network.setdefault(cls, StatAccumulator()).merge(unpack(state))

    stats = {
        cls: ClassStats(
            queuing_us=queuing[cls].mean / PS_PER_US,
            network_us=network[cls].mean / PS_PER_US,
            queuing_std_us=queuing[cls].stddev / PS_PER_US,
            network_std_us=network[cls].stddev / PS_PER_US,
            count=max(queuing[cls].count, network[cls].count),
        )
        for cls in sorted(set(queuing) | set(network))
    }

    switch_filtered = int(merged.total("switch.*.filtered_drops"))
    switch_lookups = int(merged.total("filter.*.lookups"))
    sif_activations = int(merged.total("filter.*.activations"))
    sif_deactivations = int(merged.total("filter.*.deactivations"))
    traps_received = int(merged.get("sm.traps_received"))
    traps_processed = int(merged.get("sm.traps_processed"))

    counters = merged.snapshot()
    counters["shard.count"] = config.shards
    counters["shard.rounds"] = rounds
    counters["shard.lookahead_ps"] = lookahead_ps(config)
    for r in results:
        counters[f"shard.{r.shard}.busy_seconds"] = r.busy_seconds

    return SimReport(
        config=config,
        stats=stats,
        drops=drops,
        delivered=sum(r.delivered for r in results),
        attack_windows=results[0].attack_windows,
        switch_filtered=switch_filtered,
        switch_lookups=switch_lookups,
        sif_activations=sif_activations,
        sif_deactivations=sif_deactivations,
        traps_received=traps_received,
        traps_processed=traps_processed,
        key_exchanges=0,  # sharded runs require keymgmt == NONE
        events_processed=sum(r.events_processed for r in results),
        wall_seconds=wall,
        senders=senders,
        metrics=summary,
        counters=counters,
    )


def run_sharded(
    config: SimConfig,
    transport: str | None = None,
    _crash_at: tuple[int, int] | None = None,
):
    """Run *config* on ``config.shards`` space-partitioned engines and
    return a merged, schema-compatible SimReport.

    *transport* overrides ``config.shard_transport``; *_crash_at* is a
    test hook ``(shard, sim_time_ps)`` that kills that worker mid-run
    (process transport only).
    """
    config.validate()
    transport = transport or config.shard_transport
    t0 = time.perf_counter()
    if transport == "process":
        drivers = [
            _ProcessDriver(config, s, _crash_at) for s in range(config.shards)
        ]
    else:
        drivers = [
            _InlineDriver(config, s, _crash_at) for s in range(config.shards)
        ]
    try:
        rounds = _run_rounds(drivers, config.sim_time_ps)
        results = [driver.result() for driver in drivers]
    finally:
        for driver in drivers:
            driver.close()
    wall = time.perf_counter() - t0
    return _merge_results(config, results, wall, rounds)
