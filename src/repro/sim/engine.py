"""Event-driven simulation core.

Events are ordered by (time, priority, sequence).  Time is an **integer
picosecond** count: at the paper's 2.5 Gbps link rate one byte takes exactly
3200 ps, so integer time keeps every latency exact and every run
bit-reproducible — no floating-point ties, no platform-dependent ordering.

The sequence number breaks ties deterministically in scheduling order, which
matters because DoS experiments schedule thousands of same-instant events
(credit returns, arbitration passes) whose relative order must not depend on
queue internals.

The queue structure itself is pluggable (:mod:`repro.sim.scheduler`): a
binary heap kept as the oracle, or a calendar queue for fat-tree-scale runs.
Both produce the identical (time, priority, seq) pop order; an engine
samples the module-level mode at construction.  Under the ``wheel`` scale
core the engine additionally recycles fire-and-forget events through a
free list (:meth:`Engine.schedule_pooled`) so the steady-state hot path
allocates nothing per event.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.sim.scheduler import get_scheduler, make_scheduler

#: Picoseconds per microsecond — metrics convert through this.
PS_PER_US = 1_000_000
#: Picoseconds per nanosecond.
PS_PER_NS = 1_000


class Event:
    """One scheduled callback.  Ordered by (time, priority, seq).

    Queue entries are ``(time, priority, seq, event)`` tuples, so ordering
    is resolved by C-level tuple comparison (seq is unique, the event
    object itself is never compared) — profiling showed dataclass-generated
    ``__lt__`` dominating the event loop otherwise.

    ``pooled`` marks events owned by the engine's free list: they were
    scheduled fire-and-forget (no handle escaped, so nothing can cancel
    them) and are recycled after firing.
    """

    __slots__ = ("time", "priority", "seq", "fn", "args", "cancelled", "pooled")

    def __init__(self, time: int, priority: int, seq: int,
                 fn: Callable[..., None], args: tuple[Any, ...] = ()) -> None:
        self.time = time
        self.priority = priority
        self.seq = seq
        self.fn = fn
        self.args = args
        self.cancelled = False
        self.pooled = False

    def cancel(self) -> None:
        """Mark the event dead; the engine skips it when popped."""
        self.cancelled = True


class Engine:
    """Discrete-event engine with an integer picosecond clock.

    >>> eng = Engine()
    >>> hits = []
    >>> _ = eng.schedule(100, hits.append, "b")
    >>> _ = eng.schedule(50, hits.append, "a")
    >>> eng.run()
    >>> hits
    ['a', 'b']
    """

    __slots__ = ("_sched", "_push", "_now", "_seq", "_processed", "_pool",
                 "scheduler_mode", "scale_core")

    def __init__(self, scheduler: str | None = None) -> None:
        #: which queue family this engine runs on (fixed at construction).
        self.scheduler_mode = scheduler if scheduler is not None else get_scheduler()
        #: True when the scale core is active: calendar queue, event
        #: pooling, and link credit coalescing.  False = the pre-scale-up
        #: oracle behavior.
        self.scale_core = self.scheduler_mode == "wheel"
        self._sched = make_scheduler(self.scheduler_mode)
        self._push = self._sched.push  # bound once; schedule paths are hot
        self._now = 0
        self._seq = 0
        self._processed = 0
        #: free list of recycled fire-and-forget events.
        self._pool: list[Event] = []

    @property
    def now(self) -> int:
        """Current simulation time in picoseconds."""
        return self._now

    @property
    def now_us(self) -> float:
        """Current simulation time in microseconds (for reporting only)."""
        return self._now / PS_PER_US

    @property
    def events_processed(self) -> int:
        return self._processed

    @property
    def pending_count(self) -> int:
        """Entries currently queued (live + not-yet-discarded cancelled)."""
        return len(self._sched)

    @property
    def seq_mark(self) -> int:
        """Opaque marker that changes on every schedule call.  Two reads
        returning the same value prove no event was scheduled in between —
        the link layer uses this to coalesce credit returns only when doing
        so cannot reorder anything."""
        return self._seq

    def schedule(self, delay: int, fn: Callable[..., None], *args: Any, priority: int = 0) -> Event:
        """Schedule *fn(*args)* to run *delay* picoseconds from now."""
        if delay < 0:
            raise ValueError(f"cannot schedule into the past (delay={delay})")
        time = self._now + int(delay)
        seq = self._seq
        self._seq = seq + 1
        ev = Event(time, priority, seq, fn, args)
        self._push((time, priority, seq, ev))
        return ev

    def schedule_at(self, time: int, fn: Callable[..., None], *args: Any, priority: int = 0) -> Event:
        """Schedule *fn(*args)* at absolute *time* picoseconds."""
        if time < self._now:
            raise ValueError(f"cannot schedule at {time} < now {self._now}")
        time = int(time)
        seq = self._seq
        self._seq = seq + 1
        ev = Event(time, priority, seq, fn, args)
        self._push((time, priority, seq, ev))
        return ev

    def schedule_pooled(self, delay: int, fn: Callable[..., None], *args: Any,
                        priority: int = 0) -> None:
        """Fire-and-forget :meth:`schedule`: no handle is returned, so the
        event can never be cancelled and the engine may recycle the record
        through its free list.  Under the ``heap`` oracle this degrades to a
        plain allocation, keeping that mode's behavior pre-scale-up.

        Ordering is identical to :meth:`schedule` either way — the event
        still consumes one sequence number at schedule time."""
        if not self.scale_core:
            self.schedule(delay, fn, *args, priority=priority)
            return
        if delay < 0:
            raise ValueError(f"cannot schedule into the past (delay={delay})")
        time = self._now + int(delay)
        seq = self._seq
        self._seq = seq + 1
        pool = self._pool
        if pool:
            ev = pool.pop()
            ev.time = time
            ev.priority = priority
            ev.seq = seq
            ev.fn = fn
            ev.args = args
        else:
            ev = Event(time, priority, seq, fn, args)
            ev.pooled = True
        self._push((time, priority, seq, ev))

    def peek_time(self) -> int | None:
        """Time of the next live event, or None if the queue is drained."""
        head = self._sched.peek()
        return head[0] if head is not None else None

    def step(self) -> bool:
        """Run the next event.  Returns False when no events remain."""
        sched = self._sched
        head = sched.peek()
        if head is None:
            return False
        sched.pop_head()
        ev = head[3]
        self._now = head[0]
        ev.fn(*ev.args)
        self._processed += 1
        if ev.pooled:
            ev.fn = None  # type: ignore[assignment]
            ev.args = ()
            self._pool.append(ev)
        return True

    def run(self, until: int | None = None, max_events: int | None = None) -> None:
        """Run events until the queue empties, *until* (ps) passes, or
        *max_events* have fired — whichever comes first.

        ``until`` is inclusive of events stamped exactly at that time.  The
        clock advances to ``until`` afterwards so follow-on scheduling is
        well-defined — *unless* ``max_events`` cut the run short while work
        stamped at or before ``until`` is still pending.  In that case the
        clock stays at the last processed event, so another ``run(until=...)``
        call resumes exactly where the budget ran out instead of silently
        skipping over the unprocessed events' timestamps.
        """
        # The loop itself lives on the scheduler (``drain``) so each queue
        # family runs its own fused peek/pop hot path — the heap keeps the
        # pre-scale-up inline loop verbatim, the wheel walks its current
        # bucket with a local cursor.  Cancelled entries are discarded as
        # they surface and never count against *max_events*; pooled events
        # go back on the engine's free list after firing.
        budget_hit = self._sched.drain(self, until, max_events)
        if until is not None and self._now < until:
            if budget_hit:
                nxt = self.peek_time()
                if nxt is not None and nxt <= until:
                    return  # pending work before `until` — clock must not jump it
            self._now = until
