"""Event-driven simulation core.

A single binary heap of :class:`Event` records ordered by (time, priority,
sequence).  Time is an **integer picosecond** count: at the paper's 2.5 Gbps
link rate one byte takes exactly 3200 ps, so integer time keeps every
latency exact and every run bit-reproducible — no floating-point ties, no
platform-dependent ordering.

The sequence number breaks ties deterministically in scheduling order, which
matters because DoS experiments schedule thousands of same-instant events
(credit returns, arbitration passes) whose relative order must not depend on
heap internals.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable

#: Picoseconds per microsecond — metrics convert through this.
PS_PER_US = 1_000_000
#: Picoseconds per nanosecond.
PS_PER_NS = 1_000


class Event:
    """One scheduled callback.  Ordered by (time, priority, seq).

    Heap entries are ``(time, priority, seq, event)`` tuples, so ordering
    is resolved by C-level tuple comparison (seq is unique, the event
    object itself is never compared) — profiling showed dataclass-generated
    ``__lt__`` dominating the event loop otherwise.
    """

    __slots__ = ("time", "priority", "seq", "fn", "args", "cancelled")

    def __init__(self, time: int, priority: int, seq: int,
                 fn: Callable[..., None], args: tuple[Any, ...] = ()) -> None:
        self.time = time
        self.priority = priority
        self.seq = seq
        self.fn = fn
        self.args = args
        self.cancelled = False

    def cancel(self) -> None:
        """Mark the event dead; the engine skips it when popped."""
        self.cancelled = True


class Engine:
    """Discrete-event engine with an integer picosecond clock.

    >>> eng = Engine()
    >>> hits = []
    >>> _ = eng.schedule(100, hits.append, "b")
    >>> _ = eng.schedule(50, hits.append, "a")
    >>> eng.run()
    >>> hits
    ['a', 'b']
    """

    __slots__ = ("_queue", "_now", "_seq", "_processed")

    def __init__(self) -> None:
        #: heap of (time, priority, seq, Event)
        self._queue: list[tuple[int, int, int, Event]] = []
        self._now = 0
        self._seq = 0
        self._processed = 0

    @property
    def now(self) -> int:
        """Current simulation time in picoseconds."""
        return self._now

    @property
    def now_us(self) -> float:
        """Current simulation time in microseconds (for reporting only)."""
        return self._now / PS_PER_US

    @property
    def events_processed(self) -> int:
        return self._processed

    def schedule(self, delay: int, fn: Callable[..., None], *args: Any, priority: int = 0) -> Event:
        """Schedule *fn(*args)* to run *delay* picoseconds from now."""
        if delay < 0:
            raise ValueError(f"cannot schedule into the past (delay={delay})")
        return self.schedule_at(self._now + int(delay), fn, *args, priority=priority)

    def schedule_at(self, time: int, fn: Callable[..., None], *args: Any, priority: int = 0) -> Event:
        """Schedule *fn(*args)* at absolute *time* picoseconds."""
        if time < self._now:
            raise ValueError(f"cannot schedule at {time} < now {self._now}")
        ev = Event(int(time), priority, self._seq, fn, args)
        self._seq += 1
        heapq.heappush(self._queue, (ev.time, priority, ev.seq, ev))
        return ev

    def peek_time(self) -> int | None:
        """Time of the next live event, or None if the queue is drained."""
        while self._queue and self._queue[0][3].cancelled:
            heapq.heappop(self._queue)
        return self._queue[0][0] if self._queue else None

    def step(self) -> bool:
        """Run the next event.  Returns False when no events remain."""
        while self._queue:
            ev = heapq.heappop(self._queue)[3]
            if ev.cancelled:
                continue
            self._now = ev.time
            ev.fn(*ev.args)
            self._processed += 1
            return True
        return False

    def run(self, until: int | None = None, max_events: int | None = None) -> None:
        """Run events until the queue empties, *until* (ps) passes, or
        *max_events* have fired — whichever comes first.

        ``until`` is inclusive of events stamped exactly at that time.  The
        clock advances to ``until`` afterwards so follow-on scheduling is
        well-defined — *unless* ``max_events`` cut the run short while work
        stamped at or before ``until`` is still pending.  In that case the
        clock stays at the last processed event, so another ``run(until=...)``
        call resumes exactly where the budget ran out instead of silently
        skipping over the unprocessed events' timestamps.
        """
        # One heap inspection per iteration: the loop looks at the heap top
        # exactly once, discarding cancelled entries as it finds them.  The
        # previous shape called peek_time() (which pops cancelled entries)
        # and then step() (which re-scanned from the heap top) — two
        # comparisons and two tuple unpacks per live event.  Cancelled
        # events never count against *max_events*, exactly as before.
        count = 0
        budget_hit = False
        queue = self._queue
        pop = heapq.heappop
        while queue:
            if max_events is not None and count >= max_events:
                budget_hit = True
                break
            head = queue[0]
            ev = head[3]
            if ev.cancelled:
                pop(queue)
                continue
            if until is not None and head[0] > until:
                break
            pop(queue)
            self._now = ev.time
            ev.fn(*ev.args)
            self._processed += 1
            count += 1
        if until is not None and self._now < until:
            if budget_hit:
                nxt = self.peek_time()
                if nxt is not None and nxt <= until:
                    return  # pending work before `until` — clock must not jump it
            self._now = until
