"""Parameter-sweep driver — the machinery behind multi-bar experiments.

A :class:`Sweep` takes a base :class:`~repro.sim.config.SimConfig`, a grid
of overrides, and runs one simulation per grid point (optionally across
several seeds, averaging).  The figure modules (Fig 5's enforcement × load
grid, Fig 6's key-mode × load grid) and downstream ablation studies all run
through it.

Execution model
---------------

``Sweep.run(workers=N)`` dispatches the grid-point × seed runs to a
:class:`~concurrent.futures.ProcessPoolExecutor`; ``workers=1`` (the
default) executes in-process with no multiprocessing machinery at all.
Both paths produce *identical* results in *identical* order: a run is a
pure function of its resolved :class:`SimConfig`, and results are
reassembled by grid index, never by completion order.

Robustness: each run is bounded by an optional per-run ``timeout``; a
worker crash (e.g. OOM-killed process) triggers one resubmission of the
affected jobs to a fresh pool before giving up with
:class:`SweepWorkerError`; if the host cannot spawn a process pool at all
the sweep silently falls back to in-process execution.

Run cache
---------

With ``cache=True`` (or a directory path / :class:`RunCache`), every
completed :class:`~repro.sim.runner.SimReport` is pickled into
``.sweep_cache/`` under a content hash of its fully-resolved config
(:func:`config_key`).  Re-running a benchmark only simulates points whose
configuration actually changed; everything else is a cache hit.

Observability
-------------

``run(progress=...)`` accepts a :class:`SweepProgress` callback; it
receives one :class:`PointProgress` event per completed grid point with
per-point wall time, simulated events/sec, and cache hit/miss counts.
Events are delivered in grid-index order regardless of worker count or
which points were served from the cache (completed points are buffered
until all their predecessors have been emitted).
:func:`repro.analysis.charts.sweep_progress_chart` renders a list of these
events as an ASCII chart; aggregate counters land in ``Sweep.stats``.
"""

from __future__ import annotations

import enum
import hashlib
import itertools
import json
import os
import pickle
import threading
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Any, Callable, Protocol

from repro.datapath import get_datapath
from repro.sim.config import SimConfig
from repro.sim.scheduler import get_scheduler
from repro.sim.runner import SimReport, run_simulation

#: bump when SimReport/SimConfig change shape enough to invalidate old
#: cached pickles.
#: Bump whenever SimReport's shape or semantics change — v2 added the
#: counter-registry snapshot (``SimReport.counters``), making pre-v2 cached
#: pickles incomplete; v3 folded the active datapath mode into the hashed
#: payload (a ``REPRO_DATAPATH=reference`` debug sweep must never be served
#: fast-mode entries, even though the two modes are meant to be identical);
#: v4 folded in the scheduler mode the same way (a ``REPRO_SCHEDULER=heap``
#: oracle sweep must re-execute rather than read wheel-mode entries);
#: v5 added the Bloom enforcement fields (``bloom_bits``/``bloom_hashes``/
#: ``bloom_inpacket_tag``) to SimConfig — pre-v5 entries were hashed over a
#: config shape that could not express them, so a default-bloom-params run
#: must not be served a pickle from before the Bloom mode existed;
#: v6 added the open-loop traffic family (``traffic_model`` and its
#: per-model knobs) and the coordinated attacker ramp
#: (``attack_start_us``/``attack_ramp_us``) to SimConfig — pre-v6 entries
#: were hashed over a config shape that could only express plain Poisson
#: sources and step-on attackers, so a default-model run must never be
#: served a pickle from before those axes existed.
CACHE_VERSION = 6

DEFAULT_CACHE_DIR = ".sweep_cache"


class SweepWorkerError(RuntimeError):
    """A worker process died twice running the same sweep jobs."""


class SweepTimeoutError(TimeoutError):
    """No run completed within the per-run timeout."""


# --------------------------------------------------------------------------
# run cache


def _canonical(value: Any) -> Any:
    if isinstance(value, enum.Enum):
        return value.value
    if isinstance(value, (list, tuple)):
        return [_canonical(v) for v in value]
    if isinstance(value, dict):
        return {str(k): _canonical(value[k]) for k in sorted(value, key=str)}
    return value


def config_key(config: SimConfig) -> str:
    """Stable content hash of a fully-resolved :class:`SimConfig`.

    Two configs hash equal iff every field (including the seed) is equal
    *and* the runs would execute under the same datapath and scheduler
    modes; the JSON canonicalisation makes the key independent of field
    order, enum identity, and tuple-vs-list spelling.  The mode axes are
    part of the payload because a report cached under ``fast``/``wheel``
    must not satisfy a ``reference``- or ``heap``-mode debugging sweep
    (the modes are bit-identical by design, but proving that is exactly
    what an oracle-mode sweep is for).
    """
    payload = {
        "cache_version": CACHE_VERSION,
        "datapath": get_datapath(),
        "scheduler": get_scheduler(),
        "config": _canonical(asdict(config)),
    }
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


@dataclass
class RunCache:
    """Content-addressed on-disk store of :class:`SimReport` pickles.

    One file per resolved config: ``<root>/<sha256(config)>.pkl``.  A
    corrupt or unreadable entry is treated as a miss, never an error.
    """

    root: Path = Path(DEFAULT_CACHE_DIR)
    hits: int = 0
    misses: int = 0

    def __post_init__(self) -> None:
        self.root = Path(self.root)

    def path_for(self, config: SimConfig) -> Path:
        return self.root / f"{config_key(config)}.pkl"

    def get(self, config: SimConfig) -> SimReport | None:
        try:
            with open(self.path_for(config), "rb") as f:
                report = pickle.load(f)
        except Exception:
            # Unpickling arbitrary corrupt bytes can raise nearly anything
            # (UnpicklingError, EOFError, ValueError from opcode args,
            # AttributeError/ImportError from stale class paths, ...); any
            # unreadable entry is simply a miss and gets re-simulated.
            self.misses += 1
            return None
        if not isinstance(report, SimReport):
            self.misses += 1
            return None
        self.hits += 1
        return report

    def put(self, config: SimConfig, report: SimReport) -> None:
        self.root.mkdir(parents=True, exist_ok=True)
        target = self.path_for(config)
        # write-then-rename so a concurrent reader never sees a torn file;
        # pid+thread in the tmp name so same-key writers (processes OR
        # threads) never clobber each other's half-written staging file
        tmp = target.with_name(
            f"{target.name}.{os.getpid()}.{threading.get_ident()}.tmp"
        )
        try:
            with open(tmp, "wb") as f:
                pickle.dump(report, f, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp, target)
        except (OSError, pickle.PicklingError, TypeError, AttributeError):
            # An unwritable cache directory OR an unpicklable report (a
            # runner can attach arbitrary extras; pickle raises
            # PicklingError, TypeError, or AttributeError — local objects
            # raise the latter — depending on the payload) is a non-fatal
            # cache skip: the run's in-memory result is intact.  The
            # partially-written tmp must not leak into the cache dir.
            try:
                tmp.unlink(missing_ok=True)
            except OSError:
                pass


def _resolve_cache(
    cache: RunCache | str | os.PathLike | bool | None,
) -> RunCache | None:
    if cache is None or cache is False:
        return None
    if cache is True:
        return RunCache()
    if isinstance(cache, RunCache):
        return cache
    return RunCache(root=Path(cache))


# --------------------------------------------------------------------------
# progress reporting


@dataclass(frozen=True)
class PointProgress:
    """One completed grid point, as delivered to a :class:`SweepProgress`."""

    index: int  #: grid-point index (deterministic `points()` order)
    total: int  #: number of grid points in the sweep
    overrides: dict[str, Any]
    wall_seconds: float  #: summed simulation wall time of the point's runs
    events_per_sec: float  #: simulated events per wall-second (a cache hit
    #: reports the rate of the original run that produced the entry)
    cache_hits: int  #: runs of this point served from the cache
    cache_misses: int  #: runs of this point actually simulated

    def __str__(self) -> str:  # readable default for print-style callbacks
        src = (
            "cached"
            if self.cache_misses == 0 and self.cache_hits > 0
            else f"{self.events_per_sec / 1e3:.0f}k ev/s"
        )
        return (
            f"[{self.index + 1}/{self.total}] {self.overrides} "
            f"{self.wall_seconds:.2f}s ({src})"
        )


class SweepProgress(Protocol):
    """Callback protocol for per-point sweep progress events."""

    def __call__(self, event: PointProgress) -> None: ...


@dataclass
class SweepStats:
    """Aggregate counters for one ``Sweep.run()`` invocation."""

    points: int = 0  #: grid points in the sweep
    runs: int = 0  #: grid-point × seed jobs
    simulated: int = 0  #: jobs actually executed (== cache misses when cached)
    cache_hits: int = 0
    cache_misses: int = 0
    retried: int = 0  #: jobs resubmitted after a worker crash
    wall_seconds: float = 0.0  #: harness wall-clock for the whole run()


# --------------------------------------------------------------------------
# the sweep


@dataclass(frozen=True)
class SweepPoint:
    """One grid point's outcome.

    ``mean`` treats each seed's metric as one observation; the Monte Carlo
    accessors (``pooled``/``ci``/``percentile``) see through to the
    underlying per-delivery samples, so cross-seed variance is aggregated
    correctly (see :mod:`repro.sim.stats`).
    """

    overrides: dict[str, Any]
    seeds: tuple[int, ...]
    reports: tuple[SimReport, ...]

    def _require_reports(self) -> None:
        if not self.reports:
            raise ValueError(
                f"SweepPoint {self.overrides} has no reports (seeds=())"
            )

    def mean(self, metric: Callable[[SimReport], float]) -> float:
        self._require_reports()
        return sum(metric(r) for r in self.reports) / len(self.reports)

    def pooled(self, accumulator_of: Callable[[SimReport], Any]) -> Any:
        """Merge per-seed :class:`~repro.sim.metrics.StatAccumulator`\\ s.

        *accumulator_of* extracts one accumulator per report (e.g. the
        queuing-time accumulator of one traffic class); the result's
        variance equals Welford over the concatenated samples — the
        pooled stddev a multi-seed bar must quote.
        """
        from repro.sim.stats import pooled as _pooled

        self._require_reports()
        return _pooled(accumulator_of(r) for r in self.reports)

    def ci(
        self, metric: Callable[[SimReport], float], confidence: float = 0.95
    ):
        """Student-t confidence interval on the per-seed means of *metric*
        (a :class:`~repro.sim.stats.ConfidenceInterval`)."""
        from repro.sim.stats import mean_ci

        self._require_reports()
        return mean_ci([metric(r) for r in self.reports], confidence)

    def percentile(
        self, samples_of: Callable[[SimReport], list[float]], q: float
    ) -> float:
        """The *q*-th percentile over every seed's samples, concatenated.

        *samples_of* extracts the raw per-delivery values of one report
        (e.g. via :meth:`~repro.sim.metrics.MetricsSummary.values_us`).
        """
        from repro.sim.stats import percentile as _percentile

        self._require_reports()
        values: list[float] = []
        for r in self.reports:
            values.extend(samples_of(r))
        return _percentile(values, q)


@dataclass
class Sweep:
    """Cartesian-product experiment grid.

    >>> sweep = Sweep(
    ...     base=SimConfig(sim_time_us=200.0),
    ...     grid={"best_effort_load": [0.2, 0.4], "num_attackers": [0, 1]},
    ... )
    >>> len(sweep.points())
    4
    """

    base: SimConfig
    grid: dict[str, list[Any]]
    seeds: tuple[int, ...] = (1,)
    explicit: list[dict[str, Any]] | None = None
    """When set (see :meth:`from_points`), these override dicts *are* the
    grid — for studies whose points co-vary fields the cartesian product
    cannot express (e.g. Fig 6 couples ``auth`` with ``keymgmt``)."""
    stats: SweepStats = field(default_factory=SweepStats, repr=False)
    _results: list[SweepPoint] = field(default_factory=list, repr=False)
    _ran: bool = field(default=False, repr=False)

    @classmethod
    def from_points(
        cls,
        base: SimConfig,
        points: list[dict[str, Any]],
        seeds: tuple[int, ...] = (1,),
    ) -> "Sweep":
        """A sweep over an explicit list of override dicts."""
        return cls(base=base, grid={}, seeds=seeds, explicit=list(points))

    def points(self) -> list[dict[str, Any]]:
        """The grid as a list of override dicts (deterministic order)."""
        if self.explicit is not None:
            return [dict(p) for p in self.explicit]
        keys = sorted(self.grid)
        combos = itertools.product(*(self.grid[k] for k in keys))
        return [dict(zip(keys, combo)) for combo in combos]

    def run(
        self,
        progress: SweepProgress | None = None,
        *,
        workers: int = 1,
        cache: RunCache | str | os.PathLike | bool | None = None,
        timeout: float | None = None,
        runner: Callable[[SimConfig], SimReport] = run_simulation,
    ) -> list[SweepPoint]:
        """Execute the whole grid; returns (and stores) the results.

        ``workers > 1`` fans grid-point × seed runs out to a process pool
        (``runner`` must then be a picklable module-level callable);
        ``workers=1`` runs everything in-process.  Result content and
        ordering are identical either way.

        ``cache`` enables the content-addressed run cache (``True`` for
        the default ``.sweep_cache/``, or a directory path, or a
        :class:`RunCache`).  ``timeout`` bounds each run's wall time in
        seconds (parallel mode only — an in-process run cannot be
        preempted).
        """
        t0 = time.perf_counter()
        points = self.points()
        seeds = tuple(self.seeds)
        store = _resolve_cache(cache)
        self.stats = SweepStats(points=len(points), runs=len(points) * len(seeds))

        # flat job table: index = point_i * len(seeds) + seed_i
        configs: list[SimConfig] = []
        for overrides in points:
            for seed in seeds:
                configs.append(self.base.replace(seed=seed, **overrides))

        results: list[SimReport | None] = [None] * len(configs)
        point_hits = [0] * len(points)
        jobs: list[tuple[int, SimConfig]] = []
        hits0 = store.hits if store is not None else 0
        misses0 = store.misses if store is not None else 0
        for idx, cfg in enumerate(configs):
            cached = store.get(cfg) if store is not None else None
            if cached is not None:
                results[idx] = cached
                point_hits[idx // len(seeds)] += 1
            else:
                jobs.append((idx, cfg))
        if store is not None:
            self.stats.cache_hits = store.hits - hits0
            self.stats.cache_misses = store.misses - misses0

        point_remaining = [
            sum(1 for idx, _ in jobs if idx // len(seeds) == pi) if seeds else 0
            for pi in range(len(points))
        ]
        # The PointProgress stream is strictly index-ordered: a completed
        # point (including a fully-cached one, which never enters the job
        # queue) is buffered until every lower-indexed point has been
        # emitted.  Serial runs emit each point as it completes anyway;
        # parallel runs trade a little emission latency for a stream that
        # is deterministic regardless of completion order or cache state.
        point_done = [bool(seeds) and r == 0 for pi, r in enumerate(point_remaining)]
        next_emit = 0

        def flush_ordered() -> None:
            nonlocal next_emit
            while next_emit < len(points) and point_done[next_emit]:
                emit_point(next_emit)
                next_emit += 1

        def finish_job(idx: int, report: SimReport) -> None:
            results[idx] = report
            self.stats.simulated += 1
            if store is not None:
                store.put(configs[idx], report)
            pi = idx // len(seeds)
            point_remaining[pi] -= 1
            if point_remaining[pi] == 0:
                point_done[pi] = True
                flush_ordered()

        def emit_point(pi: int) -> None:
            if progress is None:
                return
            reports = [
                results[pi * len(seeds) + si]
                for si in range(len(seeds))
            ]
            wall = sum(r.wall_seconds for r in reports if r is not None)
            events = sum(r.events_processed for r in reports if r is not None)
            progress(
                PointProgress(
                    index=pi,
                    total=len(points),
                    overrides=points[pi],
                    wall_seconds=wall,
                    events_per_sec=events / wall if wall > 0 else 0.0,
                    cache_hits=point_hits[pi],
                    cache_misses=len(seeds) - point_hits[pi],
                )
            )

        flush_ordered()  # fully-cached prefix streams before any simulation
        if workers > 1 and jobs:
            self._execute_parallel(jobs, workers, timeout, runner, finish_job)
        else:
            for idx, cfg in jobs:
                finish_job(idx, runner(cfg))

        self._results = [
            SweepPoint(
                overrides=points[pi],
                seeds=seeds,
                reports=tuple(
                    results[pi * len(seeds) + si] for si in range(len(seeds))
                ),
            )
            for pi in range(len(points))
        ]
        self._ran = True
        self.stats.wall_seconds = time.perf_counter() - t0
        return self._results

    def _execute_parallel(
        self,
        jobs: list[tuple[int, SimConfig]],
        workers: int,
        timeout: float | None,
        runner: Callable[[SimConfig], SimReport],
        finish_job: Callable[[int, SimReport], None],
    ) -> None:
        pending: dict[int, SimConfig] = dict(jobs)
        attempts: dict[int, int] = {idx: 0 for idx in pending}
        while pending:
            try:
                pool = ProcessPoolExecutor(max_workers=workers)
            except (OSError, NotImplementedError, PermissionError):
                # host can't spawn a pool (restricted sandbox): degrade
                # gracefully to the in-process path
                for idx in sorted(pending):
                    finish_job(idx, runner(pending[idx]))
                return
            broken = False
            with pool:
                futures = {}
                try:
                    for idx, cfg in sorted(pending.items()):
                        futures[pool.submit(runner, cfg)] = idx
                except BrokenProcessPool:  # a worker died mid-submission
                    broken = True
                not_done = set(futures)
                while not_done and not broken:
                    done, not_done = wait(
                        not_done, timeout=timeout, return_when=FIRST_COMPLETED
                    )
                    if not done:
                        # every worker has been busy for >= timeout with
                        # nothing finishing: the oldest run exceeded it
                        self._terminate_pool(pool)
                        raise SweepTimeoutError(
                            f"no sweep run completed within {timeout:.1f}s "
                            f"({len(not_done)} still running)"
                        )
                    for future in done:
                        idx = futures[future]
                        try:
                            report = future.result()
                        except BrokenProcessPool:
                            broken = True
                            break
                        finish_job(idx, report)
                        del pending[idx]
            if pending and not broken:
                # pool exited cleanly but jobs remain: futures were lost
                # (treated like a crash)
                broken = True
            if broken and pending:
                exhausted = [idx for idx in pending if attempts[idx] >= 1]
                if exhausted:
                    raise SweepWorkerError(
                        f"worker process died twice; giving up on jobs "
                        f"{sorted(exhausted)}"
                    )
                for idx in pending:
                    attempts[idx] += 1
                self.stats.retried += len(pending)

    @staticmethod
    def _terminate_pool(pool: ProcessPoolExecutor) -> None:
        for proc in list(getattr(pool, "_processes", {}).values()):
            try:
                proc.terminate()
            except OSError:
                pass
        pool.shutdown(wait=False, cancel_futures=True)

    @property
    def results(self) -> list[SweepPoint]:
        if not self._ran:
            raise RuntimeError("call run() first")
        return self._results

    def table(
        self,
        metrics: dict[str, Callable[[SimReport], float]],
    ) -> list[dict[str, Any]]:
        """Flatten results to rows: one per grid point, overrides + the
        requested aggregated metrics."""
        rows = []
        for point in self.results:
            row: dict[str, Any] = dict(point.overrides)
            for name, fn in metrics.items():
                row[name] = point.mean(fn)
            rows.append(row)
        return rows


def bloom_fp_axis(
    fp_rates: list[float],
    expected_entries: int,
    num_hashes: int = 4,
) -> dict[str, list[int]]:
    """Sweep-grid axis that makes false-positive rate the first-class knob.

    Converts each target *fp_rate* into the smallest ``bloom_bits`` whose
    analytic bound ``(1-e^(-kn/m))^k`` at *expected_entries* registered keys
    stays at or under it, so ``grid={**bloom_fp_axis([0.1, 0.01], 64)}``
    sweeps memory footprint along an iso-fp-rate curve.  Duplicate bit
    sizes (two fp targets rounding to one array size) are collapsed.
    """
    from repro.core.bloom import bits_for_fp_rate

    bits: list[int] = []
    for fp in fp_rates:
        m = bits_for_fp_rate(expected_entries, fp, num_hashes)
        if m not in bits:
            bits.append(m)
    return {"bloom_bits": bits}


def queuing_us(traffic_class: str) -> Callable[[SimReport], float]:
    """Metric factory: mean queuing time of *traffic_class* in µs."""
    return lambda r: r.cls(traffic_class).queuing_us


def network_us(traffic_class: str) -> Callable[[SimReport], float]:
    """Metric factory: mean network latency of *traffic_class* in µs."""
    return lambda r: r.cls(traffic_class).network_us


def total_us(traffic_class: str) -> Callable[[SimReport], float]:
    """Metric factory: queuing + network in µs (the Figure 5 bar)."""
    return lambda r: r.cls(traffic_class).total_us
