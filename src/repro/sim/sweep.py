"""Parameter-sweep driver — the machinery behind multi-bar experiments.

A :class:`Sweep` takes a base :class:`~repro.sim.config.SimConfig`, a grid
of overrides, and runs one simulation per grid point (optionally across
several seeds, averaging).  The figure modules use hand-rolled loops for
clarity; this utility serves downstream users building their own studies
(ablations, sensitivity analyses) on the same fabric.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.sim.config import SimConfig
from repro.sim.runner import SimReport, run_simulation


@dataclass(frozen=True)
class SweepPoint:
    """One grid point's outcome."""

    overrides: dict[str, Any]
    seeds: tuple[int, ...]
    reports: tuple[SimReport, ...]

    def mean(self, metric: Callable[[SimReport], float]) -> float:
        return sum(metric(r) for r in self.reports) / len(self.reports)


@dataclass
class Sweep:
    """Cartesian-product experiment grid.

    >>> sweep = Sweep(
    ...     base=SimConfig(sim_time_us=200.0),
    ...     grid={"best_effort_load": [0.2, 0.4], "num_attackers": [0, 1]},
    ... )
    >>> len(sweep.points())
    4
    """

    base: SimConfig
    grid: dict[str, list[Any]]
    seeds: tuple[int, ...] = (1,)
    _results: list[SweepPoint] = field(default_factory=list, repr=False)

    def points(self) -> list[dict[str, Any]]:
        """The grid as a list of override dicts (deterministic order)."""
        keys = sorted(self.grid)
        combos = itertools.product(*(self.grid[k] for k in keys))
        return [dict(zip(keys, combo)) for combo in combos]

    def run(self, progress: Callable[[str], None] | None = None) -> list[SweepPoint]:
        """Execute the whole grid; returns (and caches) the results."""
        self._results = []
        for overrides in self.points():
            reports = []
            for seed in self.seeds:
                cfg = self.base.replace(seed=seed, **overrides)
                reports.append(run_simulation(cfg))
            point = SweepPoint(
                overrides=overrides, seeds=self.seeds, reports=tuple(reports)
            )
            self._results.append(point)
            if progress is not None:
                progress(f"done {overrides}")
        return self._results

    @property
    def results(self) -> list[SweepPoint]:
        if not self._results:
            raise RuntimeError("call run() first")
        return self._results

    def table(
        self,
        metrics: dict[str, Callable[[SimReport], float]],
    ) -> list[dict[str, Any]]:
        """Flatten results to rows: one per grid point, overrides + the
        requested aggregated metrics."""
        rows = []
        for point in self.results:
            row: dict[str, Any] = dict(point.overrides)
            for name, fn in metrics.items():
                row[name] = point.mean(fn)
            rows.append(row)
        return rows


def queuing_us(traffic_class: str) -> Callable[[SimReport], float]:
    """Metric factory: mean queuing time of *traffic_class* in µs."""
    return lambda r: r.cls(traffic_class).queuing_us


def network_us(traffic_class: str) -> Callable[[SimReport], float]:
    """Metric factory: mean network latency of *traffic_class* in µs."""
    return lambda r: r.cls(traffic_class).network_us


def total_us(traffic_class: str) -> Callable[[SimReport], float]:
    """Metric factory: queuing + network in µs (the Figure 5 bar)."""
    return lambda r: r.cls(traffic_class).total_us
