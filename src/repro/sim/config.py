"""Experiment configuration — every knob of the paper's testbed (Table 1)
plus the security mechanisms under study.

Defaults reproduce Table 1 exactly:

====================================  =========
Physical link bandwidth               2.5 Gbps
Number of physical links per switch   5
Number of VLs per physical link       16
Realtime / best-effort MTU            1024 bytes
====================================  =========

All times inside the simulator are integer picoseconds (see
:mod:`repro.sim.engine`); the config speaks human units (Gbps, µs, bytes)
and converts.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.sim.engine import PS_PER_US


class EnforcementMode(enum.Enum):
    """Where (and whether) partition enforcement runs — Section 3.3."""

    NONE = "none"  #: HCA-only checks; switches forward everything (baseline IBA).
    DPT = "dpt"  #: Duplicate Partition Table — every switch filters at every hop.
    IF = "if"  #: Ingress Filtering — only the source node's switch filters, always.
    SIF = "sif"  #: Stateful Ingress Filtering — trap-driven, on-demand (the paper's proposal).
    BLOOM = "bloom"  #: Trap-driven like SIF, but constant-memory Bloom-filter state.


class AuthMode(enum.Enum):
    """What occupies the 32-bit ICRC field — Section 5.1."""

    ICRC = "icrc"  #: Plain CRC-32 over invariant fields (stock IBA; BTH reserved = 0).
    UMAC = "umac"  #: UMAC-2/4 authentication tag (the paper's pick).
    HMAC_MD5 = "hmac_md5"  #: Truncated HMAC-MD5 tag.
    HMAC_SHA1 = "hmac_sha1"  #: Truncated HMAC-SHA1 tag.
    PMAC = "pmac"  #: Section-7 parallelizable MAC over XTEA.
    STREAM = "stream"  #: Section-7 stream-cipher MAC.
    AES_CMAC = "aes_cmac"  #: Section-7 security-processor path (ref [39]).


class KeyMgmtMode(enum.Enum):
    """How authentication secret keys are created and indexed — Section 4."""

    NONE = "none"  #: No secret keys (auth must be ICRC).
    PARTITION = "partition"  #: One secret key per partition, indexed by P_Key (Fig. 2).
    QP = "qp"  #: Per-QP keys, indexed by (Q_Key, source QP) for datagrams (Fig. 3).


@dataclass
class SimConfig:
    """Full experiment description.  See field comments for paper mapping."""

    # --- Table 1 testbed parameters ---------------------------------------
    link_bandwidth_gbps: float = 2.5  #: 1x IBA link.
    ports_per_switch: int = 5  #: 4 mesh neighbours + 1 HCA.
    num_vls: int = 16  #: VLs per physical link.
    mtu_bytes: int = 1024  #: realtime and best-effort MTU.

    # --- topology ----------------------------------------------------------
    topology: str = "mesh"
    """Fabric shape: ``"mesh"`` (the paper's 16-node testbed, dimensions
    below) or ``"fat_tree"`` (k-ary fat tree for scale benchmarks —
    ``fat_tree_k`` pods of k/2 edge + k/2 aggregation switches over
    (k/2)^2 cores, k^3/4 HCAs total)."""
    mesh_width: int = 4
    mesh_height: int = 4
    fat_tree_k: int = 4  #: arity when topology == "fat_tree" (k=4 -> 16 HCAs).

    # --- timing model -------------------------------------------------------
    switch_routing_delay_ns: float = 200.0  #: fixed per-hop pipeline latency.
    pkey_lookup_ns: float = 100.0
    """Partition-table lookup stall when a switch port filters (DPT/IF/SIF).

    The paper argues via CACTI that one lookup is ~1 switch cycle; the
    absolute cycle time of their switch is unpublished, so this is the
    calibration knob for the DPT-vs-IF gap in Figure 5 (see EXPERIMENTS.md).
    """
    credit_return_delay_ns: float = 40.0  #: latency of a flow-control credit update.
    wire_delay_ns: float = 10.0  #: signal propagation per link.
    hca_processing_delay_ns: float = 100.0  #: receive-side CQE/processing cost.
    mac_stage_delay_ns: float = 5.0
    """One extra pipeline stage per authenticated message (Section 6: "one
    additional stage at each end node per message")."""

    # --- buffering / flow control -------------------------------------------
    vl_buffer_packets: int = 4  #: input-buffer capacity (credits) per VL per port.

    # --- partitions ----------------------------------------------------------
    num_partitions: int = 4
    partition_layout: str = "random"  #: "random" (paper) or "quadrant".

    # --- workload -------------------------------------------------------------
    realtime_load: float = 0.10  #: realtime stream rate as fraction of link bw.
    best_effort_load: float = 0.40  #: Poisson injection rate as fraction of link bw.
    enable_realtime: bool = True
    enable_best_effort: bool = True
    vl_arbitration_high_limit: int | None = None
    """None = strict priority for realtime VLs (the paper's testbed).  A
    positive value enables IBA's Limit-of-High-Priority counter: after that
    many consecutive realtime grants on a port, one waiting best-effort
    packet is served, bounding starvation."""
    realtime_backoff_queue: int = 8
    """Realtime sources skip generation when their send queue exceeds this —
    "an application does not send any packet when the current network status
    cannot support the application's bandwidth requirement"."""

    # --- open-loop traffic family --------------------------------------------
    traffic_model: str = "poisson"
    """Best-effort arrival family (all open-loop — none reacts to fabric
    state): ``"poisson"`` (the paper's model), ``"mmpp"`` (two-state on/off
    Markov-modulated Poisson bursts), ``"flash_crowd"`` (rate step at a
    scheduled instant), ``"incast"`` (periodic synchronized fan-in bursts
    at one victim per partition over background Poisson), or
    ``"elephant_mice"`` (bimodal per-source rates with the configured load
    preserved in aggregate)."""
    mmpp_on_us: float = 200.0
    """Mean ON-state sojourn (µs) of the MMPP source.  While ON it sends
    Poisson at ``load * (on + off) / on`` so the long-run rate still equals
    ``best_effort_load``; while OFF it is silent."""
    mmpp_off_us: float = 800.0  #: mean OFF-state sojourn (µs) of the MMPP source.
    flash_crowd_at_us: float = 1000.0
    """Instant of the flash-crowd rate step.  Before it, sources inject at
    ``best_effort_load``; from it on, at ``load * flash_crowd_multiplier``."""
    flash_crowd_multiplier: float = 3.0  #: post-step rate multiplier (>= 1).
    incast_period_us: float = 500.0
    """Period of the synchronized fan-in bursts of the incast model."""
    incast_burst_packets: int = 8
    """Frames each source aims at the partition victim per incast burst
    (back-to-back, on top of background Poisson at ``best_effort_load``)."""
    elephant_fraction: float = 0.25
    """Expected fraction of best-effort sources that are elephants (chosen
    per node from its own named RNG stream)."""
    elephant_boost: float = 3.0
    """Elephant rate multiplier; mice rates are scaled down so the expected
    aggregate injection stays at ``best_effort_load``
    (requires ``elephant_fraction * elephant_boost < 1``)."""

    # --- attack ---------------------------------------------------------------
    num_attackers: int = 0
    attack_duty_cycle: float = 1.0
    """Fraction of simulated time the attack is active.  Figure 1 uses 1.0
    (continuous); Figure 5 uses 0.01 ("we conservatively set the probability
    of DoS attack to 1%")."""
    attack_window_us: float = 50.0  #: length of each active window when duty < 1.
    attacker_classes: tuple[str, ...] = ("realtime", "best_effort")
    """VL classes the flooder sprays; both by default so realtime traffic is
    also disturbed (Figure 1a)."""
    attack_valid_pkey: bool = False  #: Section-7 variant: flood with a *valid* P_Key.
    attack_dest_strategy: str = "spray"
    """'spray' = fresh random destination per packet (Figure 1);
    'victim' = one random node per attack window (Figure 5's bursty hits)."""
    attacker_backlog: int = 32
    """Frames the flooder keeps staged per class.  The attacker *generates*
    at full line speed; this bounds how deep its own send queue grows while
    the fabric withholds credits."""
    attack_start_us: float = 0.0
    """Attack windows before this instant are suppressed — a coordinated
    attack that switches on mid-run (0 = attackers are live from t=0)."""
    attack_ramp_us: float = 0.0
    """Coordinated ramp: once the attack begins (at ``attack_start_us``),
    flooders scale their generation rate linearly from ~0 to full line rate
    over this duration (0 = step to full rate, the original behaviour)."""
    count_attack_in_metrics: bool = False
    """Figure 1 averages queuing time over *all* packets — including the
    attacker's own, whose source queue is where flooding hurts first (attack
    packets are timed at the moment the destination HCA discards them, since
    'they have already gone through the network').  Figure 5 measures 'the
    average ... delay of non-attacking traffic', i.e. False."""

    # --- security mechanisms ----------------------------------------------------
    enforcement: EnforcementMode = EnforcementMode.NONE
    auth: AuthMode = AuthMode.ICRC
    keymgmt: KeyMgmtMode = KeyMgmtMode.NONE
    sm_trap_latency_us: float = 10.0  #: trap MAD transit + SM handling time.
    sif_idle_timeout_us: float = 200.0
    """SIF disables itself when the Ingress P_Key Violation Counter has not
    advanced for this long.  The Bloom filter reuses the same timeout."""
    bloom_bits: int = 1024
    """Bit-array size m of the Bloom enforcement filter (mode ``bloom``).
    Together with ``bloom_hashes`` this fixes the false-positive rate at a
    given spray width — sweep it via :func:`repro.sim.sweep.bloom_fp_axis`."""
    bloom_hashes: int = 4
    """Number of double-hashing probes k per key (mode ``bloom``)."""
    bloom_inpacket_tag: bool = False
    """Capability variant (arXiv 1901.00955): HCAs stamp an in-packet Bloom
    membership tag for their own partitions' P_Keys; an *active* Bloom
    ingress filter drops any non-management packet whose tag does not
    verify.  Only meaningful when ``enforcement`` is ``bloom``."""
    rsa_bits: int = 256
    """Modulus size for the simulated PKI.  256 keeps multi-run sweeps fast;
    examples and tests also exercise 512/1024."""
    qp_key_exchange_rtt: bool = True
    """QP-level key management pays one round-trip per communicating QP pair
    before its first data packet (Figure 6's 'With Key' cost)."""
    replay_protection: bool = False  #: Section-7 nonce/sequence-number check.

    # --- run control ---------------------------------------------------------------
    sim_time_us: float = 3000.0
    warmup_us: float = 100.0  #: deliveries before this are not recorded.
    seed: int = 1
    keep_samples: bool = True

    # --- sharded parallel engine ---------------------------------------------
    shards: int = 1
    """Space-partition the fabric across this many shards (1 = the classic
    single-process engine).  Requires ``topology == "fat_tree"`` with
    ``shards`` dividing ``fat_tree_k`` (each shard owns whole pods), and a
    nonzero minimum inter-shard latency (see
    :func:`repro.sim.partition.lookahead_ps`)."""
    shard_transport: str = "inline"
    """``"inline"`` runs every shard's engine in this process (deterministic,
    test- and 1-core-friendly); ``"process"`` forks one worker per shard and
    exchanges boundary messages over pipes."""

    # --- derived quantities -----------------------------------------------------

    @property
    def byte_time_ps(self) -> int:
        """Picoseconds to serialize one byte at the link rate (3200 at 2.5 Gbps)."""
        return round(8000.0 / self.link_bandwidth_gbps)

    @property
    def num_nodes(self) -> int:
        if self.topology == "fat_tree":
            return self.fat_tree_k ** 3 // 4
        return self.mesh_width * self.mesh_height

    @property
    def sim_time_ps(self) -> int:
        return round(self.sim_time_us * PS_PER_US)

    @property
    def warmup_ps(self) -> int:
        return round(self.warmup_us * PS_PER_US)

    def validate(self) -> None:
        """Raise ValueError on inconsistent settings."""
        if self.link_bandwidth_gbps <= 0:
            raise ValueError("link bandwidth must be positive")
        if self.topology not in ("mesh", "fat_tree"):
            raise ValueError("topology must be 'mesh' or 'fat_tree'")
        if self.topology == "fat_tree":
            if self.fat_tree_k < 2 or self.fat_tree_k % 2:
                raise ValueError("fat_tree_k must be an even integer >= 2")
        elif self.mesh_width < 1 or self.mesh_height < 1:
            raise ValueError("mesh dimensions must be >= 1")
        if not 0 <= self.num_attackers <= self.num_nodes:
            raise ValueError("attacker count out of range")
        if not 0.0 <= self.attack_duty_cycle <= 1.0:
            raise ValueError("attack duty cycle must be in [0, 1]")
        if self.num_partitions < 1:
            raise ValueError("need at least one partition")
        if self.num_partitions > self.num_nodes:
            raise ValueError("more partitions than nodes")
        if self.vl_buffer_packets < 1:
            raise ValueError("need at least one credit per VL")
        if self.num_vls < 2:
            raise ValueError("need >= 2 VLs (one per traffic class)")
        if self.auth is not AuthMode.ICRC and self.keymgmt is KeyMgmtMode.NONE:
            raise ValueError(f"{self.auth} requires a key-management mode")
        if self.bloom_bits < 8:
            raise ValueError("bloom_bits must be >= 8")
        if not 1 <= self.bloom_hashes <= 16:
            raise ValueError("bloom_hashes must be in 1..16")
        if self.bloom_inpacket_tag and self.enforcement is not EnforcementMode.BLOOM:
            raise ValueError("bloom_inpacket_tag requires enforcement mode 'bloom'")
        if self.vl_arbitration_high_limit is not None and self.vl_arbitration_high_limit < 1:
            raise ValueError("vl_arbitration_high_limit must be None or >= 1")
        if self.mtu_bytes < 64 or self.mtu_bytes > 4096:
            raise ValueError("MTU out of IBA range")
        if self.partition_layout not in ("random", "quadrant", "pod"):
            raise ValueError(
                "partition_layout must be 'random', 'quadrant', or 'pod'"
            )
        if self.attack_dest_strategy not in ("spray", "victim"):
            raise ValueError("attack_dest_strategy must be 'spray' or 'victim'")
        if self.traffic_model not in (
            "poisson", "mmpp", "flash_crowd", "incast", "elephant_mice"
        ):
            raise ValueError(f"unknown traffic_model {self.traffic_model!r}")
        if self.mmpp_on_us <= 0 or self.mmpp_off_us < 0:
            raise ValueError("mmpp_on_us must be > 0 and mmpp_off_us >= 0")
        if self.flash_crowd_at_us < 0:
            raise ValueError("flash_crowd_at_us must be >= 0")
        if self.flash_crowd_multiplier < 1.0:
            raise ValueError("flash_crowd_multiplier must be >= 1")
        if self.incast_period_us <= 0:
            raise ValueError("incast_period_us must be positive")
        if self.incast_burst_packets < 1:
            raise ValueError("incast_burst_packets must be >= 1")
        if not 0.0 <= self.elephant_fraction < 1.0:
            raise ValueError("elephant_fraction must be in [0, 1)")
        if self.elephant_boost < 1.0:
            raise ValueError("elephant_boost must be >= 1")
        if self.elephant_fraction * self.elephant_boost >= 1.0:
            raise ValueError(
                "elephant_fraction * elephant_boost must be < 1 "
                "(mice would need a non-positive rate)"
            )
        if self.attack_start_us < 0 or self.attack_ramp_us < 0:
            raise ValueError("attack_start_us/attack_ramp_us must be >= 0")
        unknown = set(self.attacker_classes) - {"realtime", "best_effort"}
        if unknown:
            raise ValueError(f"unknown attacker classes: {unknown}")
        if self.shards < 1:
            raise ValueError("shards must be >= 1")
        if self.shard_transport not in ("inline", "process"):
            raise ValueError("shard_transport must be 'inline' or 'process'")
        if self.shards > 1:
            if self.topology != "fat_tree":
                raise ValueError(
                    "shards > 1 requires topology == 'fat_tree' "
                    "(shards own whole fat-tree pod groups)"
                )
            if self.fat_tree_k % self.shards:
                raise ValueError(
                    f"shards={self.shards} must divide fat_tree_k="
                    f"{self.fat_tree_k} (each shard owns whole pods)"
                )
            from repro.sim.partition import lookahead_ps

            if lookahead_ps(self) <= 0:
                raise ValueError(
                    "shards > 1 needs a nonzero minimum inter-shard latency "
                    "(wire_delay_ns, credit_return_delay_ns and "
                    "sm_trap_latency_us must all be > 0) — zero-latency "
                    "links break conservative lookahead"
                )
            if self.keymgmt is not KeyMgmtMode.NONE:
                raise ValueError(
                    "sharded runs support keymgmt == NONE only (key "
                    "distribution is a construction-time global exchange)"
                )

    def replace(self, **kwargs) -> "SimConfig":
        """Functional update (dataclasses.replace with validation)."""
        import dataclasses

        cfg = dataclasses.replace(self, **kwargs)
        cfg.validate()
        return cfg
