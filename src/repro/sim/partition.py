"""Space partitioning of a fat-tree fabric for the sharded engine.

A :class:`ShardPlan` splits the k-ary fat tree of :func:`~repro.iba.topology.
build_fat_tree` into ``n_shards`` contiguous **pod groups**: shard *s* owns
pods ``[s * k/n, (s+1) * k/n)`` — every edge and aggregation switch of those
pods, every HCA attached to them, and the core switches assigned round-robin
(core *c* belongs to shard ``c % n``).  Because HCA↔edge and edge↔agg links
are strictly intra-pod, the only links that ever cross a shard boundary are
agg↔core links — the property the conservative synchronization in
:mod:`repro.sim.shard` relies on.

The **lookahead** is the minimum latency any cross-shard interaction still
has ahead of it at the moment it becomes visible to the synchronizer:

* a packet crossing a boundary link is handed over when serialization
  completes, with the wire flight time still to go (``wire_delay_ps``);
* a flow-control credit travels back upstream after at least the
  credit-return delay (``credit_return_delay_ps``);
* a trap MAD pays the management-VL transit to the SM
  (``sm_trap_latency_us``).

Any of these at zero would let one shard affect another at its own current
instant, collapsing the conservative window to nothing — which is why
``SimConfig.validate`` rejects ``shards > 1`` with a zero minimum.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sim.engine import PS_PER_NS, PS_PER_US


def lookahead_ps(config) -> int:
    """Minimum inter-shard latency of *config* in picoseconds.

    This is the conservative window the sharded engine may extend past the
    earliest pending event of any shard: no cross-shard message can fire
    earlier than its emitting event plus this bound.
    """
    return min(
        round(config.wire_delay_ns * PS_PER_NS),
        round(config.credit_return_delay_ns * PS_PER_NS),
        round(config.sm_trap_latency_us * PS_PER_US),
    )


@dataclass(frozen=True)
class ShardPlan:
    """Ownership map of one sharded fat-tree run.

    ``n_shards`` must divide ``k`` so pod groups are equal; shard 0 is the
    designated **SM shard** — the only replica whose SubnetManager processes
    traps and issues filter registrations.
    """

    k: int
    n_shards: int

    #: shard index that runs the (single) active SubnetManager replica.
    SM_SHARD = 0

    def __post_init__(self) -> None:
        if self.n_shards < 1:
            raise ValueError("need at least one shard")
        if self.k % self.n_shards:
            raise ValueError(
                f"n_shards={self.n_shards} must divide fat_tree_k={self.k} "
                "(shards own whole pod groups)"
            )

    @property
    def pods_per_shard(self) -> int:
        return self.k // self.n_shards

    @property
    def hosts_per_pod(self) -> int:
        return (self.k // 2) ** 2

    def shard_of_pod(self, pod: int) -> int:
        return pod // self.pods_per_shard

    def shard_of_core(self, core: int) -> int:
        return core % self.n_shards

    def pod_of_lid(self, lid: int) -> int:
        return (int(lid) - 1) // self.hosts_per_pod

    def shard_of_lid(self, lid: int) -> int:
        return self.shard_of_pod(self.pod_of_lid(lid))

    def owned_pods(self, shard: int) -> range:
        p = self.pods_per_shard
        return range(shard * p, (shard + 1) * p)

    def owned_lids(self, shard: int) -> set[int]:
        hp = self.hosts_per_pod
        return {
            1 + pod * hp + i
            for pod in self.owned_pods(shard)
            for i in range(hp)
        }

    def boundary_pairs(self) -> list[tuple[int, int, int, int]]:
        """Every cross-shard ``(pod, agg, core_index, core_port)`` pair.

        One entry describes *both* directions of the agg↔core cable between
        aggregation switch ``(FT_AGG, pod * k/2 + agg)`` (its port
        ``k/2 + j`` with ``core_index = agg * k/2 + j``) and core switch
        ``(FT_CORE, core_index)`` (its port ``pod``) — returned only when
        the pod's shard differs from the core's.
        """
        half = self.k // 2
        out = []
        for pod in range(self.k):
            ps = self.shard_of_pod(pod)
            for a in range(half):
                for j in range(half):
                    core = a * half + j
                    if self.shard_of_core(core) != ps:
                        out.append((pod, a, core, pod))
        return out
