"""Workload generators — the paper's two traffic classes (Section 3.1).

* **Realtime**: "a continuous stream of packets with a higher priority than
  best-effort traffic … does not send any packet when the current network
  status cannot support the application's bandwidth requirement, and it
  also does not send faster than its predefined sending rate."  Modelled as
  a fixed-interval source that skips a slot whenever its HCA send queue is
  already deeper than a backoff threshold.

* **Best-effort**: "generated with a given injection rate and generally
  with Poisson distribution, which is similar to scientific workloads …
  does not take current network conditions into considerations."  Modelled
  as exponential inter-arrivals into an unbounded send queue — which is why
  its queuing time explodes under DoS (Figure 1b).

Load is expressed as a fraction of the 2.5 Gbps link bandwidth, measured in
on-the-wire bytes (MTU payload plus LRH/BTH/DETH/CRC overhead).

Beyond plain Poisson, the best-effort side has an **open-loop family**
(``SimConfig.traffic_model``, built by :func:`make_open_loop_source`): MMPP
on/off bursts, a flash-crowd rate step, synchronized incast fan-in, and an
elephant/mice rate mix.  All of them draw exclusively from named
:class:`~repro.sim.rng.RngStreams` streams, so per-seed byte-determinism —
and with it the sweep cache and the fuzz differential legs — is preserved.
"""

from __future__ import annotations

import random

from repro.iba.hca import HCA
from repro.iba.keys import PKey, QKey
from repro.iba.packet import (
    BaseTransportHeader,
    DataPacket,
    DatagramExtendedHeader,
    LOCAL_UD_OVERHEAD,
    LocalRouteHeader,
)
from repro.iba.qp import QueuePair
from repro.iba.types import LID, QPN, ServiceType, TrafficClass
from repro.sim.engine import Engine
from repro.sim.rng import exponential_ps


#: Constant tail of the default synthetic UD payload.
_UD_PAD = b"\x5a" * 25


def payload_prefix(src_lid: LID, dst_lid: LID) -> bytes:
    """The per-(source, destination) constant head of the default payload.

    Sources precompute this once per peer so the per-packet payload build
    folds in only the 3 PSN bytes (see :func:`make_ud_packet`)."""
    return int(src_lid).to_bytes(2, "big") + int(dst_lid).to_bytes(2, "big")


def make_ud_packet(
    src: HCA,
    src_qp: QueuePair,
    dst_lid: LID,
    dst_qpn: QPN,
    dst_qkey: QKey,
    pkey: PKey,
    traffic_class: TrafficClass,
    mtu_bytes: int,
    payload: bytes | None = None,
    is_attack: bool = False,
    prefix: bytes | None = None,
) -> DataPacket:
    """Build a UD data packet with real headers and a deterministic payload.

    ``wire_length`` is the full MTU frame; the byte payload carried for
    CRC/MAC purposes is compact (the fabric times by wire_length).
    *prefix*, when given, must equal ``payload_prefix(src.lid, dst_lid)``
    and short-circuits the two per-packet ``int.to_bytes`` calls.
    """
    wire_length = mtu_bytes + LOCAL_UD_OVERHEAD
    psn = src_qp.next_psn()
    if payload is None:
        if prefix is None:
            prefix = payload_prefix(src.lid, dst_lid)
        payload = prefix + psn.to_bytes(3, "big") + _UD_PAD
    lrh = LocalRouteHeader(
        vl=traffic_class.vl,
        service_level=traffic_class.vl,
        dlid=dst_lid,
        slid=src.lid,
        packet_length=(wire_length + 3) // 4,
    )
    bth = BaseTransportHeader(opcode=0x64, pkey=pkey, dest_qp=dst_qpn, psn=psn)
    deth = DatagramExtendedHeader(qkey=dst_qkey, src_qp=src_qp.qpn)
    return DataPacket(
        lrh=lrh,
        bth=bth,
        deth=deth,
        payload=payload,
        wire_length=wire_length,
        service=ServiceType.UNRELIABLE_DATAGRAM,
        traffic_class=traffic_class,
        is_attack=is_attack,
    )


def make_rc_packet(
    src: HCA,
    src_qp: QueuePair,
    mtu_bytes: int,
    payload: bytes | None = None,
    traffic_class: TrafficClass = TrafficClass.BEST_EFFORT,
) -> DataPacket:
    """Build a connected-service packet on an established RC QP.

    RC packets carry no DETH ("packets only carry a P_Key; no Q_Key is
    included here" — Section 4.3); the destination comes from the QP's
    connection state.
    """
    from repro.iba.packet import LOCAL_RC_OVERHEAD
    from repro.iba.types import ServiceType

    if src_qp.connected_to is None:
        raise ValueError("RC QP is not connected")
    dst_lid, dst_qpn = src_qp.connected_to
    wire_length = mtu_bytes + LOCAL_RC_OVERHEAD
    psn = src_qp.next_psn()
    if payload is None:
        payload = b"\xa5" * 32
    lrh = LocalRouteHeader(
        vl=traffic_class.vl,
        service_level=traffic_class.vl,
        dlid=dst_lid,
        slid=src.lid,
        packet_length=(wire_length + 3) // 4,
    )
    bth = BaseTransportHeader(opcode=0x04, pkey=src_qp.pkey, dest_qp=dst_qpn, psn=psn)
    return DataPacket(
        lrh=lrh,
        bth=bth,
        deth=None,
        payload=payload,
        wire_length=wire_length,
        service=ServiceType.RELIABLE_CONNECTION,
        traffic_class=traffic_class,
    )


class Peer:
    """A destination a source may send to: (lid, QPN, Q_Key)."""

    __slots__ = ("lid", "qpn", "qkey")

    def __init__(self, lid: LID, qpn: QPN, qkey: QKey) -> None:
        self.lid = lid
        self.qpn = qpn
        self.qkey = qkey


class BestEffortSource:
    """Poisson open-loop source sending to same-partition peers."""

    def __init__(
        self,
        engine: Engine,
        hca: HCA,
        qp: QueuePair,
        peers: list[Peer],
        pkey: PKey,
        load: float,
        mtu_bytes: int,
        byte_time_ps: int,
        rng: random.Random,
        stop_at_ps: int,
    ) -> None:
        if not peers:
            raise ValueError("best-effort source needs at least one peer")
        if not 0 < load <= 1.0:
            raise ValueError("load must be in (0, 1]")
        self.engine = engine
        self.hca = hca
        self.qp = qp
        self.peers = peers
        self.pkey = pkey
        self.mtu_bytes = mtu_bytes
        self.rng = rng
        self.stop_at_ps = stop_at_ps
        wire = mtu_bytes + LOCAL_UD_OVERHEAD
        self.mean_gap_ps = wire * byte_time_ps / load
        self.generated = 0
        self._prefixes = {p: payload_prefix(hca.lid, p.lid) for p in peers}

    def start(self) -> None:
        self.engine.schedule_pooled(self._next_gap_ps(), self._arrival)

    def _next_gap_ps(self) -> int:
        """Draw the next inter-arrival gap — the subclass hook the open-loop
        family overrides (rate steps, bimodal mixes)."""
        return exponential_ps(self.rng, self.mean_gap_ps)

    def _send_one(self, peer: Peer) -> None:
        pkt = make_ud_packet(
            self.hca, self.qp, peer.lid, peer.qpn, peer.qkey,
            self.pkey, TrafficClass.BEST_EFFORT, self.mtu_bytes,
            prefix=self._prefixes[peer],
        )
        self.hca.submit(pkt)
        self.generated += 1

    def _arrival(self) -> None:
        if self.engine.now >= self.stop_at_ps:
            return
        self._send_one(self.rng.choice(self.peers))
        self.engine.schedule_pooled(self._next_gap_ps(), self._arrival)


class RealtimeSource:
    """Rate-limited, self-throttling stream source."""

    def __init__(
        self,
        engine: Engine,
        hca: HCA,
        qp: QueuePair,
        peers: list[Peer],
        pkey: PKey,
        load: float,
        mtu_bytes: int,
        byte_time_ps: int,
        rng: random.Random,
        stop_at_ps: int,
        backoff_queue: int = 8,
    ) -> None:
        if not peers:
            raise ValueError("realtime source needs at least one peer")
        if not 0 < load <= 1.0:
            raise ValueError("load must be in (0, 1]")
        self.engine = engine
        self.hca = hca
        self.qp = qp
        self.peers = peers
        self.pkey = pkey
        self.mtu_bytes = mtu_bytes
        self.rng = rng
        self.stop_at_ps = stop_at_ps
        self.backoff_queue = backoff_queue
        wire = mtu_bytes + LOCAL_UD_OVERHEAD
        self.interval_ps = round(wire * byte_time_ps / load)
        self.generated = 0
        self.throttled = 0
        self._prefixes = {p: payload_prefix(hca.lid, p.lid) for p in peers}

    def start(self) -> None:
        # Random phase so the fabric's realtime streams are not in lockstep.
        phase = self.rng.randrange(self.interval_ps)
        self.engine.schedule_pooled(phase, self._tick)

    def _tick(self) -> None:
        if self.engine.now >= self.stop_at_ps:
            return
        if self.hca.queue_depth(TrafficClass.REALTIME) >= self.backoff_queue:
            # Network can't support the stream right now: skip this slot
            # rather than queueing deeper (the paper's realtime semantics).
            self.throttled += 1
        else:
            peer = self.rng.choice(self.peers)
            pkt = make_ud_packet(
                self.hca, self.qp, peer.lid, peer.qpn, peer.qkey,
                self.pkey, TrafficClass.REALTIME, self.mtu_bytes,
                prefix=self._prefixes[peer],
            )
            self.hca.submit(pkt)
            self.generated += 1
        self.engine.schedule_pooled(self.interval_ps, self._tick)


# --------------------------------------------------------------------------
# open-loop traffic family (SimConfig.traffic_model)


class MMPPSource(BestEffortSource):
    """Two-state on/off Markov-modulated Poisson source.

    Sojourn times in ON and OFF are exponential (means ``on_us``/``off_us``,
    drawn from *modulation_rng* — a separate named stream, so the burst
    schedule does not perturb the arrival draws).  While ON, arrivals are
    Poisson at rate ``load * (on + off) / on``; while OFF the source is
    silent — the long-run average rate equals the configured *load*, which
    keeps MMPP sweeps comparable to plain Poisson at the same ``load`` axis.
    """

    def __init__(self, *args, on_us: float, off_us: float,
                 modulation_rng: random.Random, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        from repro.sim.engine import PS_PER_US

        self.on_ps = max(1.0, on_us * PS_PER_US)
        self.off_ps = max(0.0, off_us * PS_PER_US)
        self.mod_rng = modulation_rng
        # burst-state gap: compensate for the silent fraction of time.
        self.burst_gap_ps = self.mean_gap_ps * self.on_ps / (self.on_ps + self.off_ps)
        self.on = False
        self.bursts = 0
        # Arrival-chain epoch: an OFF→ON flip starts a fresh chain and any
        # still-pending arrival from a previous ON period must not revive
        # (it would double the injection rate), so arrivals carry the epoch
        # they were scheduled under and drop themselves when it is stale.
        self._epoch = 0

    def start(self) -> None:
        # Start in the stationary state mix so short runs are not biased
        # toward the (usually long) OFF state.
        p_on = self.on_ps / (self.on_ps + self.off_ps)
        if self.off_ps <= 0 or self.mod_rng.random() < p_on:
            self._enter_on()
        else:
            self.engine.schedule_pooled(
                exponential_ps(self.mod_rng, self.off_ps), self._enter_on
            )

    def _enter_on(self) -> None:
        if self.engine.now >= self.stop_at_ps:
            return
        self.on = True
        self.bursts += 1
        self._epoch += 1
        self.engine.schedule_pooled(
            exponential_ps(self.rng, self.burst_gap_ps), self._arrival, self._epoch
        )
        if self.off_ps > 0:
            self.engine.schedule_pooled(
                exponential_ps(self.mod_rng, self.on_ps), self._enter_off
            )

    def _enter_off(self) -> None:
        self.on = False
        if self.engine.now < self.stop_at_ps:
            self.engine.schedule_pooled(
                exponential_ps(self.mod_rng, self.off_ps), self._enter_on
            )

    def _next_gap_ps(self) -> int:
        return exponential_ps(self.rng, self.burst_gap_ps)

    def _arrival(self, epoch: int | None = None) -> None:
        if epoch is not None and epoch != self._epoch:
            return  # stale chain from a previous ON period
        if not self.on or self.engine.now >= self.stop_at_ps:
            return
        self._send_one(self.rng.choice(self.peers))
        self.engine.schedule_pooled(self._next_gap_ps(), self._arrival, epoch)


class FlashCrowdSource(BestEffortSource):
    """Poisson source with a rate step at a scheduled instant.

    Before ``step_at_ps`` it injects at the configured *load*; from the
    step on, at ``load * multiplier`` — the open-loop flash-crowd model
    (nothing about the fabric's state feeds back into the rate).
    """

    def __init__(self, *args, step_at_ps: int, multiplier: float, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        if multiplier < 1.0:
            raise ValueError("flash-crowd multiplier must be >= 1")
        self.step_at_ps = max(0, int(step_at_ps))
        self.multiplier = multiplier

    def _next_gap_ps(self) -> int:
        gap = self.mean_gap_ps
        if self.engine.now >= self.step_at_ps:
            gap = gap / self.multiplier
        return exponential_ps(self.rng, gap)


class IncastSource(BestEffortSource):
    """Background Poisson plus synchronized fan-in bursts at one victim.

    Every ``period_ps`` (at exact multiples of the period — all sources in
    the fabric burst at the same instant), the source aims
    ``burst_packets`` back-to-back MTU frames at *victim* (the factory
    picks each partition's lowest-LID member, so a whole partition's bursts
    converge on a single HCA — the classic incast hotspot).
    """

    def __init__(self, *args, period_ps: int, burst_packets: int,
                 victim: Peer, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        if period_ps <= 0:
            raise ValueError("incast period must be positive")
        if burst_packets < 1:
            raise ValueError("incast burst must be >= 1 packets")
        if victim not in self.peers:
            raise ValueError("incast victim must be one of the peers")
        self.period_ps = int(period_ps)
        self.burst_packets = burst_packets
        self.victim = victim
        self.burst_sent = 0

    def start(self) -> None:
        super().start()  # background Poisson chain
        self.engine.schedule_at(self.period_ps, self._burst)

    def _burst(self) -> None:
        if self.engine.now >= self.stop_at_ps:
            return
        for _ in range(self.burst_packets):
            self._send_one(self.victim)
            self.burst_sent += 1
        self.engine.schedule_pooled(self.period_ps, self._burst)


class ElephantMiceSource(BestEffortSource):
    """Poisson source whose rate is the elephant or mouse share of *load*.

    The factory decides each node's role from its own named stream and
    scales the rates so the expected aggregate stays at the configured
    load: elephants inject at ``load * boost``, mice at
    ``load * (1 - fraction * boost) / (1 - fraction)``.
    """

    def __init__(self, *args, elephant: bool, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.elephant = elephant


def make_open_loop_source(
    config,
    engine: Engine,
    hca: HCA,
    qp: QueuePair,
    peers: list[Peer],
    pkey: PKey,
    byte_time_ps: int,
    streams,
    lid: LID,
) -> BestEffortSource:
    """Build the best-effort source ``config.traffic_model`` asks for.

    Every stochastic choice (arrivals, MMPP modulation, elephant role) comes
    from its own named stream of *streams* (an
    :class:`~repro.sim.rng.RngStreams`), so two runs of the same config are
    byte-identical and a model change perturbs only its own streams.
    """
    from repro.sim.engine import PS_PER_US

    model = config.traffic_model
    rng = streams.get("be", lid)
    args = (engine, hca, qp, peers, pkey)
    load = config.best_effort_load
    common = dict(
        mtu_bytes=config.mtu_bytes, byte_time_ps=byte_time_ps,
        rng=rng, stop_at_ps=config.sim_time_ps,
    )
    if model == "poisson":
        return BestEffortSource(*args, load, **common)
    if model == "mmpp":
        return MMPPSource(
            *args, load, **common,
            on_us=config.mmpp_on_us, off_us=config.mmpp_off_us,
            modulation_rng=streams.get("mmpp", lid),
        )
    if model == "flash_crowd":
        return FlashCrowdSource(
            *args, load, **common,
            step_at_ps=round(config.flash_crowd_at_us * PS_PER_US),
            multiplier=config.flash_crowd_multiplier,
        )
    if model == "incast":
        victim = min(peers, key=lambda p: int(p.lid))
        return IncastSource(
            *args, load, **common,
            period_ps=round(config.incast_period_us * PS_PER_US),
            burst_packets=config.incast_burst_packets,
            victim=victim,
        )
    if model == "elephant_mice":
        f, boost = config.elephant_fraction, config.elephant_boost
        elephant = f > 0 and streams.get("role", lid).random() < f
        if elephant:
            node_load = min(1.0, load * boost)
        else:
            node_load = load * (1.0 - f * boost) / (1.0 - f) if f > 0 else load
        return ElephantMiceSource(*args, node_load, **common, elephant=elephant)
    raise ValueError(f"unknown traffic_model {model!r}")
