"""Workload generators — the paper's two traffic classes (Section 3.1).

* **Realtime**: "a continuous stream of packets with a higher priority than
  best-effort traffic … does not send any packet when the current network
  status cannot support the application's bandwidth requirement, and it
  also does not send faster than its predefined sending rate."  Modelled as
  a fixed-interval source that skips a slot whenever its HCA send queue is
  already deeper than a backoff threshold.

* **Best-effort**: "generated with a given injection rate and generally
  with Poisson distribution, which is similar to scientific workloads …
  does not take current network conditions into considerations."  Modelled
  as exponential inter-arrivals into an unbounded send queue — which is why
  its queuing time explodes under DoS (Figure 1b).

Load is expressed as a fraction of the 2.5 Gbps link bandwidth, measured in
on-the-wire bytes (MTU payload plus LRH/BTH/DETH/CRC overhead).
"""

from __future__ import annotations

import random

from repro.iba.hca import HCA
from repro.iba.keys import PKey, QKey
from repro.iba.packet import (
    BaseTransportHeader,
    DataPacket,
    DatagramExtendedHeader,
    LOCAL_UD_OVERHEAD,
    LocalRouteHeader,
)
from repro.iba.qp import QueuePair
from repro.iba.types import LID, QPN, ServiceType, TrafficClass
from repro.sim.engine import Engine
from repro.sim.rng import exponential_ps


#: Constant tail of the default synthetic UD payload.
_UD_PAD = b"\x5a" * 25


def payload_prefix(src_lid: LID, dst_lid: LID) -> bytes:
    """The per-(source, destination) constant head of the default payload.

    Sources precompute this once per peer so the per-packet payload build
    folds in only the 3 PSN bytes (see :func:`make_ud_packet`)."""
    return int(src_lid).to_bytes(2, "big") + int(dst_lid).to_bytes(2, "big")


def make_ud_packet(
    src: HCA,
    src_qp: QueuePair,
    dst_lid: LID,
    dst_qpn: QPN,
    dst_qkey: QKey,
    pkey: PKey,
    traffic_class: TrafficClass,
    mtu_bytes: int,
    payload: bytes | None = None,
    is_attack: bool = False,
    prefix: bytes | None = None,
) -> DataPacket:
    """Build a UD data packet with real headers and a deterministic payload.

    ``wire_length`` is the full MTU frame; the byte payload carried for
    CRC/MAC purposes is compact (the fabric times by wire_length).
    *prefix*, when given, must equal ``payload_prefix(src.lid, dst_lid)``
    and short-circuits the two per-packet ``int.to_bytes`` calls.
    """
    wire_length = mtu_bytes + LOCAL_UD_OVERHEAD
    psn = src_qp.next_psn()
    if payload is None:
        if prefix is None:
            prefix = payload_prefix(src.lid, dst_lid)
        payload = prefix + psn.to_bytes(3, "big") + _UD_PAD
    lrh = LocalRouteHeader(
        vl=traffic_class.vl,
        service_level=traffic_class.vl,
        dlid=dst_lid,
        slid=src.lid,
        packet_length=(wire_length + 3) // 4,
    )
    bth = BaseTransportHeader(opcode=0x64, pkey=pkey, dest_qp=dst_qpn, psn=psn)
    deth = DatagramExtendedHeader(qkey=dst_qkey, src_qp=src_qp.qpn)
    return DataPacket(
        lrh=lrh,
        bth=bth,
        deth=deth,
        payload=payload,
        wire_length=wire_length,
        service=ServiceType.UNRELIABLE_DATAGRAM,
        traffic_class=traffic_class,
        is_attack=is_attack,
    )


def make_rc_packet(
    src: HCA,
    src_qp: QueuePair,
    mtu_bytes: int,
    payload: bytes | None = None,
    traffic_class: TrafficClass = TrafficClass.BEST_EFFORT,
) -> DataPacket:
    """Build a connected-service packet on an established RC QP.

    RC packets carry no DETH ("packets only carry a P_Key; no Q_Key is
    included here" — Section 4.3); the destination comes from the QP's
    connection state.
    """
    from repro.iba.packet import LOCAL_RC_OVERHEAD
    from repro.iba.types import ServiceType

    if src_qp.connected_to is None:
        raise ValueError("RC QP is not connected")
    dst_lid, dst_qpn = src_qp.connected_to
    wire_length = mtu_bytes + LOCAL_RC_OVERHEAD
    psn = src_qp.next_psn()
    if payload is None:
        payload = b"\xa5" * 32
    lrh = LocalRouteHeader(
        vl=traffic_class.vl,
        service_level=traffic_class.vl,
        dlid=dst_lid,
        slid=src.lid,
        packet_length=(wire_length + 3) // 4,
    )
    bth = BaseTransportHeader(opcode=0x04, pkey=src_qp.pkey, dest_qp=dst_qpn, psn=psn)
    return DataPacket(
        lrh=lrh,
        bth=bth,
        deth=None,
        payload=payload,
        wire_length=wire_length,
        service=ServiceType.RELIABLE_CONNECTION,
        traffic_class=traffic_class,
    )


class Peer:
    """A destination a source may send to: (lid, QPN, Q_Key)."""

    __slots__ = ("lid", "qpn", "qkey")

    def __init__(self, lid: LID, qpn: QPN, qkey: QKey) -> None:
        self.lid = lid
        self.qpn = qpn
        self.qkey = qkey


class BestEffortSource:
    """Poisson open-loop source sending to same-partition peers."""

    def __init__(
        self,
        engine: Engine,
        hca: HCA,
        qp: QueuePair,
        peers: list[Peer],
        pkey: PKey,
        load: float,
        mtu_bytes: int,
        byte_time_ps: int,
        rng: random.Random,
        stop_at_ps: int,
    ) -> None:
        if not peers:
            raise ValueError("best-effort source needs at least one peer")
        if not 0 < load <= 1.0:
            raise ValueError("load must be in (0, 1]")
        self.engine = engine
        self.hca = hca
        self.qp = qp
        self.peers = peers
        self.pkey = pkey
        self.mtu_bytes = mtu_bytes
        self.rng = rng
        self.stop_at_ps = stop_at_ps
        wire = mtu_bytes + LOCAL_UD_OVERHEAD
        self.mean_gap_ps = wire * byte_time_ps / load
        self.generated = 0
        self._prefixes = {p: payload_prefix(hca.lid, p.lid) for p in peers}

    def start(self) -> None:
        self.engine.schedule_pooled(exponential_ps(self.rng, self.mean_gap_ps), self._arrival)

    def _arrival(self) -> None:
        if self.engine.now >= self.stop_at_ps:
            return
        peer = self.rng.choice(self.peers)
        pkt = make_ud_packet(
            self.hca, self.qp, peer.lid, peer.qpn, peer.qkey,
            self.pkey, TrafficClass.BEST_EFFORT, self.mtu_bytes,
            prefix=self._prefixes[peer],
        )
        self.hca.submit(pkt)
        self.generated += 1
        self.engine.schedule_pooled(exponential_ps(self.rng, self.mean_gap_ps), self._arrival)


class RealtimeSource:
    """Rate-limited, self-throttling stream source."""

    def __init__(
        self,
        engine: Engine,
        hca: HCA,
        qp: QueuePair,
        peers: list[Peer],
        pkey: PKey,
        load: float,
        mtu_bytes: int,
        byte_time_ps: int,
        rng: random.Random,
        stop_at_ps: int,
        backoff_queue: int = 8,
    ) -> None:
        if not peers:
            raise ValueError("realtime source needs at least one peer")
        if not 0 < load <= 1.0:
            raise ValueError("load must be in (0, 1]")
        self.engine = engine
        self.hca = hca
        self.qp = qp
        self.peers = peers
        self.pkey = pkey
        self.mtu_bytes = mtu_bytes
        self.rng = rng
        self.stop_at_ps = stop_at_ps
        self.backoff_queue = backoff_queue
        wire = mtu_bytes + LOCAL_UD_OVERHEAD
        self.interval_ps = round(wire * byte_time_ps / load)
        self.generated = 0
        self.throttled = 0
        self._prefixes = {p: payload_prefix(hca.lid, p.lid) for p in peers}

    def start(self) -> None:
        # Random phase so the fabric's realtime streams are not in lockstep.
        phase = self.rng.randrange(self.interval_ps)
        self.engine.schedule_pooled(phase, self._tick)

    def _tick(self) -> None:
        if self.engine.now >= self.stop_at_ps:
            return
        if self.hca.queue_depth(TrafficClass.REALTIME) >= self.backoff_queue:
            # Network can't support the stream right now: skip this slot
            # rather than queueing deeper (the paper's realtime semantics).
            self.throttled += 1
        else:
            peer = self.rng.choice(self.peers)
            pkt = make_ud_packet(
                self.hca, self.qp, peer.lid, peer.qpn, peer.qkey,
                self.pkey, TrafficClass.REALTIME, self.mtu_bytes,
                prefix=self._prefixes[peer],
            )
            self.hca.submit(pkt)
            self.generated += 1
        self.engine.schedule_pooled(self.interval_ps, self._tick)
