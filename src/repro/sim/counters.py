"""Counter registry — the fabric's single source of runtime statistics.

Every stat producer in the data path (switches, HCAs, links, the SM, the
three port-filter policies, auth services, attackers) registers named
:class:`Counter` objects into one :class:`CounterRegistry` instead of
keeping bespoke ``self.<stat> = 0`` integers.  That buys three things:

* **one namespace** — ``registry.snapshot()`` is the complete statistical
  state of a run, with hierarchical dotted names
  (``switch.s1x0.filtered_drops``, ``filter.s1x0.p0.activations``,
  ``hca.3.delivered``, ``sm.traps_processed``);
* **survivability** — the snapshot is a plain ``dict[str, int | float]``
  that pickles into :class:`~repro.sim.runner.SimReport` and therefore
  crosses the parallel-sweep process boundary and lands in the
  ``.sweep_cache/`` unchanged;
* **aggregation** — report builders sum over glob patterns
  (:meth:`CounterRegistry.total`) instead of walking object graphs.

A :class:`Counter` emulates an integer (comparisons, arithmetic,
``sum()``, formatting), so call sites that *read* statistics —
``sum(sw.forwarded for ...)``, ``assert filt.drops > 0`` — keep working
verbatim; only the *producers* change, from ``self.x += 1`` to
``self.x.inc()``.  ``tools/check_bare_counters.py`` enforces that no new
bare-integer stat sneaks back into ``iba/`` or ``core/``.
"""

from __future__ import annotations

from fnmatch import fnmatchcase


class Counter:
    """A named, mutable, int-emulating statistic.

    Mutation goes through :meth:`inc` / :meth:`add` (never ``+=`` on the
    attribute — that would rebind the attribute to a plain number and
    detach it from the registry).  Reads behave like the underlying
    number: ``int(c)``, ``c > 0``, ``c == 5``, ``sum([...])``, ``f"{c}"``
    all work.
    """

    __slots__ = ("name", "value", "kind")

    def __init__(
        self, name: str, value: int | float = 0, kind: str = "counter"
    ) -> None:
        self.name = name
        self.value = value
        #: ``"counter"`` for plain statistics, ``"state"`` for counters the
        #: simulation *reads* (see :meth:`CounterRegistry.state_counter`).
        #: Cross-shard merges refuse to fold counters of different kinds.
        self.kind = kind

    # -- mutation ----------------------------------------------------------

    def inc(self, n: int | float = 1) -> None:
        self.value += n

    add = inc  #: alias — reads better for non-unit increments.

    def reset(self) -> None:
        self.value = 0

    # -- number emulation --------------------------------------------------

    @staticmethod
    def _val(other):
        return other.value if isinstance(other, Counter) else other

    def __int__(self) -> int:
        return int(self.value)

    __index__ = __int__

    def __float__(self) -> float:
        return float(self.value)

    def __bool__(self) -> bool:
        return bool(self.value)

    def __eq__(self, other) -> bool:
        return self.value == self._val(other)

    def __ne__(self, other) -> bool:
        return self.value != self._val(other)

    def __lt__(self, other) -> bool:
        return self.value < self._val(other)

    def __le__(self, other) -> bool:
        return self.value <= self._val(other)

    def __gt__(self, other) -> bool:
        return self.value > self._val(other)

    def __ge__(self, other) -> bool:
        return self.value >= self._val(other)

    def __add__(self, other):
        return self.value + self._val(other)

    __radd__ = __add__

    def __sub__(self, other):
        return self.value - self._val(other)

    def __rsub__(self, other):
        return self._val(other) - self.value

    def __mul__(self, other):
        return self.value * self._val(other)

    __rmul__ = __mul__

    def __truediv__(self, other):
        return self.value / self._val(other)

    def __rtruediv__(self, other):
        return self._val(other) / self.value

    def __neg__(self):
        return -self.value

    # Counters are mutable: identity hash (like any plain object), even
    # though equality compares values.  They are never used as dict keys
    # for value lookup.
    def __hash__(self) -> int:
        return id(self)

    def __format__(self, spec: str) -> str:
        return format(self.value, spec)

    def __repr__(self) -> str:
        return f"Counter({self.name}={self.value!r})"


class NullCounter(Counter):
    """A counter whose mutators are no-ops and whose value is pinned at 0.

    A **disabled** :class:`CounterRegistry` hands every requester the same
    shared instance, so hot-path call sites keep their unconditional
    ``self.stat.inc()`` shape — the increment itself becomes a no-op
    method call rather than a per-call ``if`` (the zero-cost-observability
    contract; see :mod:`repro.observability`).  Reads still behave like the
    number 0, so diagnostic code that compares counters keeps working.
    """

    __slots__ = ()

    def inc(self, n: int | float = 1) -> None:
        pass

    add = inc

    def reset(self) -> None:
        pass

    def __repr__(self) -> str:
        return f"NullCounter({self.name})"


class CounterRegistry:
    """Flat, ordered namespace of :class:`Counter` objects.

    Names are dotted paths: ``<component>.<instance>.<stat>``.  Requesting
    an existing name returns the same object, so a component constructed
    twice against the same registry shares (and keeps accumulating into)
    its counters — components therefore use unique instance scopes.

    Built with ``enabled=False`` the registry is a black hole: every
    :meth:`counter` request returns one shared :class:`NullCounter`, the
    namespace stays empty, and :meth:`snapshot` is ``{}``.  Simulation
    behavior is unchanged because nothing in the data path *reads* plain
    counters to make decisions — state the simulation does read (e.g. the
    SIF Invalid P_Key violation counter, whose idle-timeout check compares
    successive values) must be requested via :meth:`state_counter`, which
    stays a real mutable counter in either mode.
    """

    __slots__ = ("_counters", "enabled", "_null", "_state")

    def __init__(self, enabled: bool = True) -> None:
        self._counters: dict[str, Counter] = {}
        self.enabled = enabled
        self._null = NullCounter("disabled") if not enabled else None
        # real counters handed out while disabled (see state_counter) —
        # kept out of _counters so snapshot()/names() stay empty.
        self._state: dict[str, Counter] = {}

    def counter(self, name: str, initial: int | float = 0) -> Counter:
        """Create (or fetch) the counter called *name*."""
        if self._null is not None:
            return self._null
        c = self._counters.get(name)
        if c is None:
            c = Counter(name, initial)
            self._counters[name] = c
        return c

    #: Gauges are counters whose value is *set* rather than accumulated;
    #: the registry does not distinguish — the alias documents intent.
    gauge = counter

    def state_counter(self, name: str, initial: int | float = 0) -> Counter:
        """Create (or fetch) a counter that models **hardware state** the
        simulation reads to make decisions.  Unlike :meth:`counter`, a
        disabled registry still returns a real, mutable counter — nulling
        it would change simulation behavior, not just observability.  When
        disabled the counter is excluded from the exported namespace
        (:meth:`snapshot` stays ``{}``); when enabled it is an ordinary
        registry counter (of kind ``"state"``)."""
        store = self._counters if self._null is None else self._state
        c = store.get(name)
        if c is None:
            c = Counter(name, initial, kind="state")
            store[name] = c
        return c

    def get(self, name: str) -> int | float:
        """Current value of *name* (0 when never registered)."""
        c = self._counters.get(name)
        return c.value if c is not None else 0

    def names(self) -> list[str]:
        return sorted(self._counters)

    def __contains__(self, name: str) -> bool:
        return name in self._counters

    def __len__(self) -> int:
        return len(self._counters)

    def total(self, pattern: str) -> int | float:
        """Sum of every counter whose name matches the glob *pattern*
        (e.g. ``switch.*.filtered_drops``)."""
        return sum(
            c.value for name, c in self._counters.items()
            if fnmatchcase(name, pattern)
        )

    def snapshot(self, pattern: str | None = None) -> dict[str, int | float]:
        """Plain, picklable ``{name: value}`` dict (sorted by name);
        *pattern* optionally restricts to matching names."""
        return {
            name: self._counters[name].value
            for name in sorted(self._counters)
            if pattern is None or fnmatchcase(name, pattern)
        }

    def kinds(self) -> dict[str, str]:
        """``{name: kind}`` for every registered counter — the sharded
        engine ships this alongside :meth:`snapshot` so merges can enforce
        kind agreement across process boundaries."""
        return {name: c.kind for name, c in self._counters.items()}

    @classmethod
    def from_snapshot(
        cls,
        snapshot: dict[str, int | float],
        kinds: dict[str, str] | None = None,
    ) -> "CounterRegistry":
        """Rebuild an enabled registry from a :meth:`snapshot` dict (and an
        optional :meth:`kinds` map), preserving the dict's iteration order.
        This is how per-shard counter state is rehydrated for a cross-shard
        :meth:`merge`."""
        registry = cls(enabled=True)
        kinds = kinds or {}
        for name, value in snapshot.items():
            registry._counters[name] = Counter(
                name, value, kind=kinds.get(name, "counter")
            )
        return registry

    def merge(self, other: "CounterRegistry") -> None:
        """Fold *other*'s counters into this registry, in place.

        Same-name counters sum; names only *other* has are appended in
        *other*'s order after this registry's existing names, so repeated
        merges preserve a stable, deterministic counter ordering.  A
        same-name pair whose kinds disagree (plain ``"counter"`` vs
        ``"state"``) raises ``ValueError`` — summing hardware state into a
        statistic (or vice versa) is always a wiring bug.  Merging an empty
        or disabled registry is a no-op, so shards that processed nothing
        cost nothing."""
        for name, theirs in other._counters.items():
            mine = self._counters.get(name)
            if mine is None:
                self._counters[name] = Counter(name, theirs.value, theirs.kind)
            elif mine.kind != theirs.kind:
                raise ValueError(
                    f"cannot merge counter {name!r}: kind {mine.kind!r} "
                    f"!= {theirs.kind!r}"
                )
            else:
                mine.value += theirs.value
