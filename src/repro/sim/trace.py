"""Packet-lifecycle tracing — optional observability for debugging runs.

A :class:`Tracer` subscribes to lifecycle events (created, injected, hop,
filtered, delivered, dropped) and records them with timestamps.  The fabric
itself stays trace-free; tests and tools wrap the objects they care about
with :func:`attach_hca_tracer` / :func:`attach_switch_tracer`, which
decorate methods non-invasively.

Useful for answering "where did packet 1234 die?" and for the examples'
step-by-step narratives.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.sim.engine import PS_PER_US


@dataclass(frozen=True)
class TraceEvent:
    time_ps: int
    kind: str  #: created | injected | switch_rx | filtered | delivered | dropped
    where: str
    packet_id: int
    detail: str = ""

    @property
    def time_us(self) -> float:
        return self.time_ps / PS_PER_US


@dataclass
class Tracer:
    """Accumulates :class:`TraceEvent` records."""

    events: list[TraceEvent] = field(default_factory=list)
    #: restrict recording to these packet ids (None = everything).
    watch: set[int] | None = None

    def record(self, time_ps: int, kind: str, where: str, packet_id: int, detail: str = "") -> None:
        if self.watch is not None and packet_id not in self.watch:
            return
        self.events.append(TraceEvent(time_ps, kind, where, packet_id, detail))

    def for_packet(self, packet_id: int) -> list[TraceEvent]:
        return [e for e in self.events if e.packet_id == packet_id]

    def kinds(self) -> dict[str, int]:
        out: dict[str, int] = {}
        for e in self.events:
            out[e.kind] = out.get(e.kind, 0) + 1
        return out

    def timeline(self, packet_id: int) -> str:
        lines = [
            f"{e.time_us:10.3f} us  {e.kind:<10} {e.where:<16} {e.detail}"
            for e in self.for_packet(packet_id)
        ]
        return "\n".join(lines)


def attach_hca_tracer(hca, tracer: Tracer) -> None:
    """Wrap an HCA's submit/inject/deliver path with trace records."""
    original_submit = hca.submit
    original_check = hca._check_and_deliver

    def traced_submit(packet):
        tracer.record(hca.engine.now, "created", f"hca{int(hca.lid)}", packet.packet_id)
        original_submit(packet)

    def traced_check(packet):
        before = hca.delivered
        original_check(packet)
        if hca.delivered > before:
            tracer.record(
                hca.engine.now, "delivered", f"hca{int(hca.lid)}", packet.packet_id
            )
        else:
            tracer.record(
                hca.engine.now, "dropped", f"hca{int(hca.lid)}", packet.packet_id
            )

    hca.submit = traced_submit
    hca._check_and_deliver = traced_check

    original_try_inject = hca._try_inject

    def traced_try_inject():
        # record injection times by diffing queue heads before/after
        pending = {id(q): list(q) for q in hca.send_queues}
        original_try_inject()
        for q in hca.send_queues:
            before_list = pending[id(q)]
            gone = len(before_list) - len(q)
            for pkt in before_list[:gone]:
                tracer.record(
                    hca.engine.now, "injected", f"hca{int(hca.lid)}", pkt.packet_id
                )

    hca._try_inject = traced_try_inject


def attach_switch_tracer(switch, tracer: Tracer) -> None:
    """Wrap a switch's receive/drop path with trace records."""
    original_receive = switch.receive
    original_pipeline = switch._pipeline_done

    def traced_receive(packet, in_port):
        tracer.record(
            switch.engine.now, "switch_rx", switch.name, packet.packet_id,
            f"port {in_port}",
        )
        original_receive(packet, in_port)

    def traced_pipeline(packet, in_port, accept):
        if not accept:
            tracer.record(
                switch.engine.now, "filtered", switch.name, packet.packet_id,
                f"port {in_port}",
            )
        original_pipeline(packet, in_port, accept)

    switch.receive = traced_receive
    switch._pipeline_done = traced_pipeline
