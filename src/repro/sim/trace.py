"""Structured trace export — the fabric's lifecycle event bus.

A :class:`Tracer` is wired into the fabric at build time
(``build_experiment(cfg, tracer=...)`` / ``run_simulation(cfg,
tracer=...)``) and receives lifecycle events natively from every
component in the data and control paths:

====================  ======================================================
packet lifecycle      ``created``, ``injected``, ``switch_rx``,
                      ``forwarded``, ``filtered``, ``unroutable``,
                      ``delivered``, ``dropped``
security control      ``trap_raised`` (HCA → SM P_Key-violation trap),
                      ``sif_registered`` (SM registered a P_Key at the
                      ingress filter), ``sif_activated``,
                      ``sif_deactivated`` (idle age-out)
faults                ``link_down``, ``link_up``
====================  ======================================================

Control-plane events carry ``packet_id = -1``; everything has an integer
picosecond timestamp.  ``max_events`` turns the tracer into a bounded
ring buffer (oldest events evicted) so long production-scale runs can
keep tracing on with O(1) memory.  :meth:`Tracer.to_jsonl` /
:meth:`Tracer.jsonl_lines` export the buffer as JSON Lines — one event
object per line — for offline analysis and the ``repro-sim trace`` CLI.

The legacy :func:`attach_hca_tracer` / :func:`attach_switch_tracer`
decorators remain for tracing a fabric that was built *without* a tracer;
a fabric built with one must not also be wrapped (events would double).
"""

from __future__ import annotations

import json
from collections import deque
from dataclasses import dataclass, field
from typing import IO, Iterator

from repro.sim.engine import PS_PER_US

#: packet_id used by events that are not about one packet (SIF state
#: changes, link faults).
NO_PACKET = -1


def null_trace(
    time_ps: int,
    kind: str,
    where: str,
    packet_id: int = NO_PACKET,
    detail: str = "",
) -> None:
    """Signature-compatible no-op for :meth:`Tracer.record`.

    Hot-path components bind ``self._trace`` once at construction — to
    ``tracer.record`` when tracing is on, to this function when it is off —
    so the untraced fast path pays one no-op call instead of a branch per
    emission site (the zero-cost-observability contract; see
    :mod:`repro.observability` and ``tools/check_observability.py``).
    """


@dataclass(frozen=True)
class TraceEvent:
    time_ps: int
    kind: str  #: see the taxonomy table in the module docstring
    where: str  #: component instance, e.g. ``hca3``, ``s1x0``, ``s1x0.p0``
    packet_id: int = NO_PACKET
    detail: str = ""

    @property
    def time_us(self) -> float:
        return self.time_ps / PS_PER_US

    def to_json(self) -> str:
        return json.dumps(
            {
                "time_ps": self.time_ps,
                "time_us": self.time_us,
                "kind": self.kind,
                "where": self.where,
                "packet_id": self.packet_id,
                "detail": self.detail,
            },
            separators=(",", ":"),
        )


@dataclass
class Tracer:
    """Accumulates :class:`TraceEvent` records (list or bounded ring)."""

    events: "list[TraceEvent] | deque[TraceEvent]" = field(default_factory=list)
    #: restrict recording of *packet* events to these ids (None =
    #: everything).  Control-plane events (packet_id == NO_PACKET) are
    #: always recorded.
    watch: set[int] | None = None
    #: ring-buffer capacity; None = unbounded list.
    max_events: int | None = None
    #: total events offered to record() (admitted or evicted) — lets a
    #: ring-mode consumer detect truncation.
    seen: int = 0

    def __post_init__(self) -> None:
        if self.max_events is not None and not isinstance(self.events, deque):
            self.events = deque(self.events, maxlen=self.max_events)

    def record(
        self,
        time_ps: int,
        kind: str,
        where: str,
        packet_id: int = NO_PACKET,
        detail: str = "",
    ) -> None:
        if (
            self.watch is not None
            and packet_id != NO_PACKET
            and packet_id not in self.watch
        ):
            return
        self.seen += 1
        self.events.append(TraceEvent(time_ps, kind, where, packet_id, detail))

    @property
    def truncated(self) -> bool:
        """True when ring mode has evicted at least one event."""
        return len(self.events) < self.seen

    def for_packet(self, packet_id: int) -> list[TraceEvent]:
        return [e for e in self.events if e.packet_id == packet_id]

    def of_kind(self, *kinds: str) -> list[TraceEvent]:
        return [e for e in self.events if e.kind in kinds]

    def kinds(self) -> dict[str, int]:
        out: dict[str, int] = {}
        for e in self.events:
            out[e.kind] = out.get(e.kind, 0) + 1
        return out

    def timeline(self, packet_id: int) -> str:
        lines = [
            f"{e.time_us:10.3f} us  {e.kind:<12} {e.where:<16} {e.detail}"
            for e in self.for_packet(packet_id)
        ]
        return "\n".join(lines)

    # -- export ------------------------------------------------------------

    def jsonl_lines(self) -> Iterator[str]:
        """The buffer as JSON Lines (insertion order = time order)."""
        for e in self.events:
            yield e.to_json()

    def to_jsonl(self, out: "str | IO[str]") -> int:
        """Write the buffer to *out* (a path or an open text file).
        Returns the number of events written."""
        n = 0
        if isinstance(out, str):
            with open(out, "w", encoding="utf-8") as f:
                return self.to_jsonl(f)
        for line in self.jsonl_lines():
            out.write(line + "\n")
            n += 1
        return n


def attach_hca_tracer(hca, tracer: Tracer) -> None:
    """Wrap an HCA's submit/inject/deliver path with trace records.

    For fabrics built without a native tracer only — a natively traced
    HCA already emits these events itself.
    """
    original_submit = hca.submit
    original_check = hca._check_and_deliver

    def traced_submit(packet):
        tracer.record(hca.engine.now, "created", f"hca{int(hca.lid)}", packet.packet_id)
        original_submit(packet)

    def traced_check(packet):
        before = int(hca.delivered)
        original_check(packet)
        if hca.delivered > before:
            tracer.record(
                hca.engine.now, "delivered", f"hca{int(hca.lid)}", packet.packet_id
            )
        else:
            tracer.record(
                hca.engine.now, "dropped", f"hca{int(hca.lid)}", packet.packet_id
            )

    hca.submit = traced_submit
    hca._check_and_deliver = traced_check

    original_try_inject = hca._try_inject

    def traced_try_inject():
        # record injection times by diffing queue heads before/after
        pending = {id(q): list(q) for q in hca.send_queues}
        original_try_inject()
        for q in hca.send_queues:
            before_list = pending[id(q)]
            gone = len(before_list) - len(q)
            for pkt in before_list[:gone]:
                tracer.record(
                    hca.engine.now, "injected", f"hca{int(hca.lid)}", pkt.packet_id
                )

    hca._try_inject = traced_try_inject


def attach_switch_tracer(switch, tracer: Tracer) -> None:
    """Wrap a switch's receive/drop path with trace records (legacy —
    see :func:`attach_hca_tracer`)."""
    original_receive = switch.receive
    original_pipeline = switch._pipeline_done

    def traced_receive(packet, in_port):
        tracer.record(
            switch.engine.now, "switch_rx", switch.name, packet.packet_id,
            f"port {in_port}",
        )
        original_receive(packet, in_port)

    def traced_pipeline(packet, in_port, accept):
        if not accept:
            tracer.record(
                switch.engine.now, "filtered", switch.name, packet.packet_id,
                f"port {in_port}",
            )
        original_pipeline(packet, in_port, accept)

    switch.receive = traced_receive
    switch._pipeline_done = traced_pipeline
