"""Fault injection — link failures and switch crashes with key leakage.

Two of the paper's motivating sentences become executable here:

* "a packet can be captured on the link" — :meth:`FaultInjector.tap_link`
  gives an eavesdropper copies of everything crossing a link, including
  the plaintext P_Keys/Q_Keys in the headers (feeding the Table 3 attacks);
* "it is possible that a switch crashes and leaks Keys" —
  :meth:`FaultInjector.crash_switch` takes a switch down (all its links
  fail; traffic through it stalls at the sources, demonstrating the
  credit-based backpressure once more) and returns the key material an
  attacker could scrape from its state.

Failures are scheduleable at absolute simulation times and reversible,
so tests can assert both degraded and recovered behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.iba.keys import PKey, QKey
from repro.iba.link import Link
from repro.iba.packet import DataPacket
from repro.iba.topology import Fabric


@dataclass(frozen=True)
class LeakedKeys:
    """What a crashed/scraped switch gives the attacker: every plaintext
    key its filter tables and in-flight packets held."""

    switch: str
    pkeys: frozenset[PKey]
    qkeys: frozenset[QKey]


@dataclass
class FaultInjector:
    """Schedules and tracks faults on one fabric."""

    fabric: Fabric
    failed_links: list[Link] = field(default_factory=list)
    crashed: list[str] = field(default_factory=list)
    #: link name -> one capture list per registered eavesdropper.
    _tap_lists: dict[str, list[list[DataPacket]]] = field(default_factory=dict)

    # -- link faults --------------------------------------------------------

    def fail_link(self, link: Link, at_ps: int | None = None) -> None:
        """Take *link* down now or at *at_ps*."""

        def do_fail():
            link.fail()
            self.failed_links.append(link)

        if at_ps is None:
            do_fail()
        else:
            self.fabric.engine.schedule_at(at_ps, do_fail)

    def restore_link(self, link: Link, at_ps: int | None = None) -> None:
        def do_restore():
            link.restore()
            if link in self.failed_links:
                self.failed_links.remove(link)

        if at_ps is None:
            do_restore()
        else:
            self.fabric.engine.schedule_at(at_ps, do_restore)

    # -- switch crash -------------------------------------------------------

    def crash_switch(self, coords: tuple[int, int], at_ps: int | None = None,
                     on_leak: Callable[[LeakedKeys], None] | None = None) -> None:
        """Crash the switch at *coords*: every attached link (both
        directions) fails, and the keys scrapeable from its state leak."""
        switch = self.fabric.switches[coords]

        def do_crash():
            pkeys: set[PKey] = set()
            qkeys: set[QKey] = set()
            for port in range(switch.num_ports):
                for link in (switch.out_links[port], switch.in_links[port]):
                    if link is not None and not link.failed:
                        link.fail()
                        self.failed_links.append(link)
                # scrape buffered packets' plaintext keys
                for fifo in switch.inputs[port].fifos:
                    for entry in fifo.ready:
                        pkeys.add(entry.packet.pkey)
                        if entry.packet.qkey is not None:
                            qkeys.add(entry.packet.qkey)
                # scrape filter tables (valid P_Key indices are keys too)
                filt = switch.filters[port]
                for attr in ("table", "partition_table"):
                    for idx in getattr(filt, attr, ()):  # type: ignore[union-attr]
                        pkeys.add(PKey(idx | PKey.FULL_MEMBER_BIT))
            # packets still in the routing/enforcement pipeline stage are
            # physically in the input buffers too — they leak just the same
            for packet in switch.pipeline_packets():
                pkeys.add(packet.pkey)
                if packet.qkey is not None:
                    qkeys.add(packet.qkey)
            self.crashed.append(switch.name)
            if on_leak is not None:
                on_leak(LeakedKeys(switch.name, frozenset(pkeys), frozenset(qkeys)))

        if at_ps is None:
            do_crash()
        else:
            self.fabric.engine.schedule_at(at_ps, do_crash)

    def restore_switch(self, coords: tuple[int, int], at_ps: int | None = None) -> None:
        """Reverse :meth:`crash_switch`: bring every attached link (both
        directions) back up, now or at *at_ps*.

        Each link's :meth:`~repro.iba.link.Link.restore` re-arms its sender,
        so traffic stalled behind the crash starts draining immediately; the
        leaked keys stay leaked (a reboot does not un-disclose a secret).
        """
        switch = self.fabric.switches[coords]

        def do_restore():
            for port in range(switch.num_ports):
                for link in (switch.out_links[port], switch.in_links[port]):
                    if link is not None and link.failed:
                        link.restore()
                        if link in self.failed_links:
                            self.failed_links.remove(link)
            if switch.name in self.crashed:
                self.crashed.remove(switch.name)

        if at_ps is None:
            do_restore()
        else:
            self.fabric.engine.schedule_at(at_ps, do_restore)

    # -- wire taps ----------------------------------------------------------

    def tap_link(self, link: Link) -> list[DataPacket]:
        """Attach a passive eavesdropper to *link*; returns the (live) list
        of captured packets.  "A packet can be captured on the link".

        Multiple eavesdroppers may tap the same link — each call returns an
        independent capture list and every registered tap sees every packet
        (a second tap no longer silently replaces the first).
        """
        captured: list[DataPacket] = []
        listeners = self._tap_lists.setdefault(link.name, [])
        listeners.append(captured)
        if len(listeners) == 1:
            # first tap on this link: install the fan-out dispatcher once
            def dispatch(packet: DataPacket, _listeners=listeners) -> None:
                for sink in _listeners:
                    sink.append(packet)

            link.tap = dispatch
        return captured

    @property
    def taps(self) -> dict[str, list[DataPacket]]:
        """Merged view of every tap's captures per link (capture order)."""
        merged: dict[str, list[DataPacket]] = {}
        for name, listeners in self._tap_lists.items():
            if len(listeners) == 1:
                merged[name] = listeners[0]
            else:
                # all listeners see the same packets; the first is canonical
                merged[name] = list(listeners[0]) if listeners else []
        return merged

    def captured_keys(self, link_name: str) -> tuple[set[PKey], set[QKey]]:
        """Plaintext keys readable from a tap's captures — exactly what
        Table 3's attacker starts from.  Unions over *all* eavesdroppers
        registered on the link."""
        pkeys: set[PKey] = set()
        qkeys: set[QKey] = set()
        for captured in self._tap_lists.get(link_name, []):
            for pkt in captured:
                pkeys.add(pkt.pkey)
                if pkt.qkey is not None:
                    qkeys.add(pkt.qkey)
        return pkeys, qkeys
