"""Fault injection — link failures and switch crashes with key leakage.

Two of the paper's motivating sentences become executable here:

* "a packet can be captured on the link" — :meth:`FaultInjector.tap_link`
  gives an eavesdropper copies of everything crossing a link, including
  the plaintext P_Keys/Q_Keys in the headers (feeding the Table 3 attacks);
* "it is possible that a switch crashes and leaks Keys" —
  :meth:`FaultInjector.crash_switch` takes a switch down (all its links
  fail; traffic through it stalls at the sources, demonstrating the
  credit-based backpressure once more) and returns the key material an
  attacker could scrape from its state.

Failures are scheduleable at absolute simulation times and reversible,
so tests can assert both degraded and recovered behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.iba.keys import PKey, QKey
from repro.iba.link import Link
from repro.iba.packet import DataPacket
from repro.iba.topology import Fabric


@dataclass(frozen=True)
class LeakedKeys:
    """What a crashed/scraped switch gives the attacker: every plaintext
    key its filter tables and in-flight packets held."""

    switch: str
    pkeys: frozenset[PKey]
    qkeys: frozenset[QKey]


@dataclass
class FaultInjector:
    """Schedules and tracks faults on one fabric."""

    fabric: Fabric
    failed_links: list[Link] = field(default_factory=list)
    crashed: list[str] = field(default_factory=list)
    taps: dict[str, list[DataPacket]] = field(default_factory=dict)

    # -- link faults --------------------------------------------------------

    def fail_link(self, link: Link, at_ps: int | None = None) -> None:
        """Take *link* down now or at *at_ps*."""

        def do_fail():
            link.fail()
            self.failed_links.append(link)

        if at_ps is None:
            do_fail()
        else:
            self.fabric.engine.schedule_at(at_ps, do_fail)

    def restore_link(self, link: Link, at_ps: int | None = None) -> None:
        def do_restore():
            link.restore()
            if link in self.failed_links:
                self.failed_links.remove(link)

        if at_ps is None:
            do_restore()
        else:
            self.fabric.engine.schedule_at(at_ps, do_restore)

    # -- switch crash -------------------------------------------------------

    def crash_switch(self, coords: tuple[int, int], at_ps: int | None = None,
                     on_leak: Callable[[LeakedKeys], None] | None = None) -> None:
        """Crash the switch at *coords*: every attached link (both
        directions) fails, and the keys scrapeable from its state leak."""
        switch = self.fabric.switches[coords]

        def do_crash():
            pkeys: set[PKey] = set()
            qkeys: set[QKey] = set()
            for port in range(switch.num_ports):
                for link in (switch.out_links[port], switch.in_links[port]):
                    if link is not None and not link.failed:
                        link.fail()
                        self.failed_links.append(link)
                # scrape buffered packets' plaintext keys
                for fifo in switch.inputs[port].fifos:
                    for entry in fifo.ready:
                        pkeys.add(entry.packet.pkey)
                        if entry.packet.qkey is not None:
                            qkeys.add(entry.packet.qkey)
                # scrape filter tables (valid P_Key indices are keys too)
                filt = switch.filters[port]
                for attr in ("table", "partition_table"):
                    for idx in getattr(filt, attr, ()):  # type: ignore[union-attr]
                        pkeys.add(PKey(idx | PKey.FULL_MEMBER_BIT))
            self.crashed.append(switch.name)
            if on_leak is not None:
                on_leak(LeakedKeys(switch.name, frozenset(pkeys), frozenset(qkeys)))

        if at_ps is None:
            do_crash()
        else:
            self.fabric.engine.schedule_at(at_ps, do_crash)

    # -- wire taps ----------------------------------------------------------

    def tap_link(self, link: Link) -> list[DataPacket]:
        """Attach a passive eavesdropper to *link*; returns the (live) list
        of captured packets.  "A packet can be captured on the link"."""
        captured: list[DataPacket] = []
        self.taps[link.name] = captured
        link.tap = captured.append
        return captured

    def captured_keys(self, link_name: str) -> tuple[set[PKey], set[QKey]]:
        """Plaintext keys readable from a tap's captures — exactly what
        Table 3's attacker starts from."""
        pkeys: set[PKey] = set()
        qkeys: set[QKey] = set()
        for pkt in self.taps.get(link_name, []):
            pkeys.add(pkt.pkey)
            if pkt.qkey is not None:
                qkeys.add(pkt.qkey)
        return pkeys, qkeys
