"""Discrete-event simulation substrate.

The paper evaluates everything on a packet-level InfiniBand testbed; this
package is the engine underneath our reproduction of that testbed: an event
heap with a picosecond integer clock (:mod:`repro.sim.engine`), named seeded
RNG streams (:mod:`repro.sim.rng`), latency/queuing statistics
(:mod:`repro.sim.metrics`), experiment configuration
(:mod:`repro.sim.config`), traffic generators and the DoS attacker
(:mod:`repro.sim.traffic`), and the experiment runner
(:mod:`repro.sim.runner`).
"""

from repro.sim.engine import Engine, Event
from repro.sim.rng import RngStreams
from repro.sim.metrics import StatAccumulator, LatencySample, MetricsCollector
from repro.sim.config import SimConfig, EnforcementMode, AuthMode, KeyMgmtMode


def __getattr__(name):
    # Lazy: the runner pulls in repro.core and repro.iba, which themselves
    # import leaf modules of this package — importing it eagerly here would
    # create a cycle whenever a fabric module is imported first.
    if name in ("SimReport", "run_simulation", "build_experiment"):
        from repro.sim import runner

        return getattr(runner, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

__all__ = [
    "Engine",
    "Event",
    "RngStreams",
    "StatAccumulator",
    "LatencySample",
    "MetricsCollector",
    "SimConfig",
    "EnforcementMode",
    "AuthMode",
    "KeyMgmtMode",
    "SimReport",
    "run_simulation",
]
