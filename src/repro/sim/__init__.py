"""Discrete-event simulation substrate.

The paper evaluates everything on a packet-level InfiniBand testbed; this
package is the engine underneath our reproduction of that testbed: an event
heap with a picosecond integer clock (:mod:`repro.sim.engine`), named seeded
RNG streams (:mod:`repro.sim.rng`), latency/queuing statistics
(:mod:`repro.sim.metrics`), experiment configuration
(:mod:`repro.sim.config`), traffic generators and the DoS attacker
(:mod:`repro.sim.traffic`), and the experiment runner
(:mod:`repro.sim.runner`).
"""

from repro.sim.counters import Counter, CounterRegistry
from repro.sim.engine import Engine, Event
from repro.sim.rng import RngStreams
from repro.sim.trace import NO_PACKET, TraceEvent, Tracer
from repro.sim.metrics import (
    StatAccumulator,
    LatencySample,
    MetricsCollector,
    MetricsSummary,
)
from repro.sim.config import SimConfig, EnforcementMode, AuthMode, KeyMgmtMode

_LAZY_RUNNER = ("SimReport", "run_simulation", "build_experiment")
_LAZY_SWEEP = ("Sweep", "SweepPoint", "RunCache", "SweepStats", "PointProgress")


def __getattr__(name):
    # Lazy: the runner pulls in repro.core and repro.iba, which themselves
    # import leaf modules of this package — importing it eagerly here would
    # create a cycle whenever a fabric module is imported first.
    if name in _LAZY_RUNNER:
        from repro.sim import runner

        return getattr(runner, name)
    if name in _LAZY_SWEEP:
        from repro.sim import sweep

        return getattr(sweep, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

__all__ = [
    "Counter",
    "CounterRegistry",
    "Engine",
    "Event",
    "NO_PACKET",
    "TraceEvent",
    "Tracer",
    "RngStreams",
    "StatAccumulator",
    "LatencySample",
    "MetricsCollector",
    "MetricsSummary",
    "SimConfig",
    "EnforcementMode",
    "AuthMode",
    "KeyMgmtMode",
    "SimReport",
    "run_simulation",
    "Sweep",
    "SweepPoint",
    "RunCache",
    "SweepStats",
    "PointProgress",
]
