"""Experiment runner: build a fabric from a :class:`SimConfig`, wire
partitions, security mechanisms, traffic and attackers, run, and summarize.

This is the function every figure/table benchmark calls.  One
``run_simulation(config)`` is one bar/point of the paper's plots.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.core.attacks import RandomPKeyFlooder, make_attack_windows
from repro.core.auth import IcrcAuthService, MacAuthService, auth_function_for
from repro.core.enforcement import install_enforcement
from repro.core.keymgmt import NodeDirectory, PartitionLevelKeyManager, QPLevelKeyManager
from repro.iba.keys import PKey, QKey
from repro.iba.packet import LOCAL_UD_OVERHEAD
from repro.iba.qp import QueuePair
from repro.iba.subnet_manager import SubnetManager
from repro.iba.topology import Fabric, build_fabric, path_length
from repro.iba.types import QPN, ServiceType
from repro.observability import observability_enabled
from repro.sim.config import AuthMode, EnforcementMode, KeyMgmtMode, SimConfig
from repro.sim.counters import CounterRegistry
from repro.sim.engine import Engine, PS_PER_US
from repro.sim.metrics import MetricsCollector, MetricsSummary
from repro.sim.rng import RngStreams
from repro.sim.trace import Tracer
from repro.sim.traffic import (
    BestEffortSource,
    Peer,
    RealtimeSource,
    make_open_loop_source,
)


@dataclass
class ClassStats:
    """Summary for one traffic class, in microseconds (the paper's unit)."""

    queuing_us: float
    network_us: float
    queuing_std_us: float
    network_std_us: float
    count: int

    @property
    def total_us(self) -> float:
        return self.queuing_us + self.network_us


@dataclass
class SimReport:
    """Everything a benchmark needs from one run.

    Reports are picklable (they cross process boundaries in parallel sweeps
    and land in the on-disk run cache): the live :class:`MetricsCollector`
    is never stored here — ``metrics`` is a detached, serializable
    :class:`MetricsSummary` when the run kept samples.
    """

    config: SimConfig
    stats: dict[str, ClassStats]
    drops: dict[str, int]
    delivered: int
    attack_windows: list[tuple[int, int]]
    switch_filtered: int = 0
    switch_lookups: int = 0
    sif_activations: int = 0
    sif_deactivations: int = 0
    traps_received: int = 0
    traps_processed: int = 0
    key_exchanges: int = 0
    events_processed: int = 0
    wall_seconds: float = 0.0
    senders: dict[str, int] = field(default_factory=dict)
    """Traffic sources actually *started* per class — nodes whose partition
    peers are all attackers never start one, so this can be less than
    ``num_nodes - num_attackers``."""
    metrics: MetricsSummary | None = field(default=None, repr=False)
    counters: dict[str, int | float] = field(default_factory=dict, repr=False)
    """Full :class:`~repro.sim.counters.CounterRegistry` snapshot of the
    run — every named statistic of every component, as plain numbers, so
    the complete counter state survives pickling across the parallel-sweep
    process boundary and the on-disk run cache."""

    def counter(self, name: str) -> int | float:
        """One counter from the snapshot (0 when absent)."""
        return self.counters.get(name, 0)

    def counter_total(self, pattern: str) -> int | float:
        """Sum of snapshot counters whose name matches the glob *pattern*
        (e.g. ``filter.*.activations``)."""
        from fnmatch import fnmatchcase

        return sum(
            v for k, v in self.counters.items() if fnmatchcase(k, pattern)
        )

    def cls(self, name: str) -> ClassStats:
        return self.stats.get(
            name, ClassStats(0.0, 0.0, 0.0, 0.0, 0)
        )

    def goodput_gbps(self, traffic_class: str) -> float:
        """Delivered goodput of *traffic_class* over the run, in Gbit/s of
        on-the-wire bytes (payload + headers), fabric-wide."""
        stats = self.cls(traffic_class)
        wire_bits = (self.config.mtu_bytes + LOCAL_UD_OVERHEAD) * 8
        seconds = self.config.sim_time_ps / 1e12
        return stats.count * wire_bits / seconds / 1e9 if seconds > 0 else 0.0

    def offered_load_gbps(self, traffic_class: str) -> float:
        """Configured injection rate of the class, fabric-wide (honest
        nodes only), for goodput/offered comparisons."""
        load = {
            "best_effort": self.config.best_effort_load if self.config.enable_best_effort else 0.0,
            "realtime": self.config.realtime_load if self.config.enable_realtime else 0.0,
        }.get(traffic_class, 0.0)
        if traffic_class in self.senders:
            senders = self.senders[traffic_class]
        else:
            # Report built without sender counts: best available estimate.
            senders = self.config.num_nodes - self.config.num_attackers
        return load * self.config.link_bandwidth_gbps * senders

    def excluding_attack_windows(self, traffic_class: str) -> tuple[float, float]:
        """(queuing_us, network_us) over deliveries injected outside attack
        windows — the paper's IF-vs-SIF 14.19 µs / 13.65 µs comparison."""
        if self.metrics is None:
            raise RuntimeError("run with keep_samples=True for windowed stats")
        q, n = self.metrics.windowed(traffic_class, exclude=self.attack_windows)
        return q.mean / PS_PER_US, n.mean / PS_PER_US

    def summary(self) -> str:
        lines = [
            f"enforcement={self.config.enforcement.value} auth={self.config.auth.value} "
            f"keymgmt={self.config.keymgmt.value} attackers={self.config.num_attackers} "
            f"be_load={self.config.best_effort_load:.0%}",
        ]
        for name in sorted(self.stats):
            s = self.stats[name]
            lines.append(
                f"  {name:<12} queuing {s.queuing_us:8.2f} us (sd {s.queuing_std_us:7.2f})"
                f"  network {s.network_us:8.2f} us (sd {s.network_std_us:7.2f})"
                f"  n={s.count}"
            )
        if self.drops:
            lines.append(f"  drops: {dict(sorted(self.drops.items()))}")
        return "\n".join(lines)


def estimate_rtt_ps(fabric: Fabric, src: int, dst: int) -> int:
    """Round-trip estimate for a 256-byte management exchange, used as the
    QP-level key-exchange cost ("one round trip time delay")."""
    cfg = fabric.config
    hops = path_length(fabric, src, dst)
    links = hops + 1
    one_way = links * (256 * cfg.byte_time_ps) + hops * round(
        cfg.switch_routing_delay_ns * 1000
    )
    return 2 * one_way


def build_experiment(
    config: SimConfig,
    tracer: Tracer | None = None,
    only_lids: set[int] | None = None,
):
    """Construct (engine, fabric, sources, attackers) without running.

    Split from :func:`run_simulation` so tests can poke at intermediate
    state and examples can drive the fabric interactively.  *tracer*
    (optional) is wired into every component as the lifecycle event bus.

    *only_lids* restricts which nodes get **active** traffic sources and
    flooders; the fabric, partitions, QPs, and attack schedule are still
    built identically (every RNG stream is named globally or per-LID, so
    a restricted build agrees bit-for-bit with the full one on the nodes
    it does drive).  The sharded engine builds one full-fabric replica per
    shard and passes each replica its owned LIDs here.
    """
    config.validate()
    engine = Engine()
    metrics = MetricsCollector(keep_samples=config.keep_samples)
    # Zero-cost observability (repro.observability): "off" builds the whole
    # fabric against a null counter registry and without a tracer, so the
    # hot path's bookkeeping reduces to no-op calls.
    obs_on = observability_enabled()
    if not obs_on:
        tracer = None
    registry = CounterRegistry(enabled=obs_on)
    fabric = build_fabric(engine, config, metrics, registry=registry, tracer=tracer)
    streams = RngStreams(config.seed)

    sm = SubnetManager(
        engine,
        trap_latency_us=config.sm_trap_latency_us,
        registry=fabric.registry,
    )
    fabric.sm = sm
    for hca in fabric.hcas.values():
        hca.trap_sink = sm.submit_trap

    # --- partitions: "we partition the IBA network into four random groups"
    lids = fabric.lids
    if config.partition_layout == "random":
        shuffled = lids[:]
        streams.get("partitions").shuffle(shuffled)
    else:  # quadrant / pod: deterministic orderings of the sorted LIDs
        shuffled = sorted(lids)
    chunk_bounds = [
        len(shuffled) * i // config.num_partitions
        for i in range(config.num_partitions + 1)
    ]
    partitions: dict[int, set[int]] = {}
    pkeys: dict[int, PKey] = {}
    for i in range(config.num_partitions):
        index = i + 1
        if config.partition_layout == "pod":
            # contiguous LID blocks — partitions align with fat-tree pods
            # (and therefore with shards), keeping legitimate traffic local
            members = set(shuffled[chunk_bounds[i] : chunk_bounds[i + 1]])
        else:
            # strided assignment so every node lands in exactly one partition
            # even when the node count doesn't divide evenly
            members = set(shuffled[i :: config.num_partitions])
        if not members:
            continue
        pkeys[index] = sm.create_partition(index, members)
        for lid in members:
            fabric.hca(lid).keys.grant_pkey(pkeys[index])

    # --- one UD QP per node, Q_Key from a per-node stream
    node_partition: dict[int, int] = {}
    for index, members in sm.partitions.items():
        for lid in members:
            node_partition[lid] = index
    qps: dict[int, QueuePair] = {}
    for lid in lids:
        index = node_partition[lid]
        qkey = QKey(streams.get("qkey", lid).randrange(1, 2**31))
        qp = QueuePair(
            qpn=QPN(0x100 + lid),
            service=ServiceType.UNRELIABLE_DATAGRAM,
            pkey=pkeys[index],
            qkey=qkey,
        )
        fabric.hca(lid).add_qp(qp)
        qps[lid] = qp

    # --- key management and authentication
    key_manager = None
    if config.keymgmt is not KeyMgmtMode.NONE:
        directory = NodeDirectory.for_nodes(
            lids, streams.get("rsa"), bits=config.rsa_bits
        )
        if config.keymgmt is KeyMgmtMode.PARTITION:
            key_manager = PartitionLevelKeyManager(
                directory, streams.get("pkeys"), registry=fabric.registry
            )
            for index, members in sm.partitions.items():
                key_manager.create_partition_key(index, members)
        else:
            rtt = (
                (lambda a, b: estimate_rtt_ps(fabric, a, b))
                if config.qp_key_exchange_rtt
                else (lambda a, b: 0)
            )
            key_manager = QPLevelKeyManager(
                directory, streams.get("qpkeys"), rtt, registry=fabric.registry
            )

    if config.auth is AuthMode.ICRC:
        auth = IcrcAuthService()
    else:
        auth = MacAuthService(
            auth_function_for(config.auth),
            key_manager,
            mac_stage_delay_ns=config.mac_stage_delay_ns,
            registry=fabric.registry,
        )
    for hca in fabric.hcas.values():
        hca.auth = auth
        hca.replay_protection = config.replay_protection
        hca.record_attack_packets = config.count_attack_in_metrics

    # --- enforcement
    install_enforcement(fabric, config.enforcement)

    # --- attackers: random compromised nodes
    attackers: list[int] = []
    if config.num_attackers:
        attackers = streams.get("attackers").sample(lids, config.num_attackers)
    windows = make_attack_windows(
        config.sim_time_ps,
        config.attack_duty_cycle if config.num_attackers else 0.0,
        round(config.attack_window_us * PS_PER_US),
        streams.get("windows"),
        start_ps=round(config.attack_start_us * PS_PER_US),
    )

    # --- legitimate traffic: same-partition peers, per Section 3.1
    sources = []
    byte_ps = config.byte_time_ps
    for lid in lids:
        if lid in attackers:
            continue
        if only_lids is not None and lid not in only_lids:
            continue
        index = node_partition[lid]
        peer_lids = [m for m in sm.partitions[index] if m != lid and m not in attackers]
        if not peer_lids:
            continue
        peers = [Peer(m, qps[m].qpn, qps[m].qkey) for m in sorted(peer_lids)]
        hca = fabric.hca(lid)
        if config.enable_best_effort:
            src = make_open_loop_source(
                config, engine, hca, qps[lid], peers, pkeys[index],
                byte_ps, streams, lid,
            )
            src.start()
            sources.append(src)
        if config.enable_realtime:
            src = RealtimeSource(
                engine, hca, qps[lid], peers, pkeys[index],
                config.realtime_load, config.mtu_bytes, byte_ps,
                streams.get("rt", lid), config.sim_time_ps,
                backoff_queue=config.realtime_backoff_queue,
            )
            src.start()
            sources.append(src)

    flooders = []
    valid_indices = sm.valid_pkey_indices()
    for lid in attackers:
        if only_lids is not None and lid not in only_lids:
            continue
        valid_pkey = pkeys[node_partition[lid]] if config.attack_valid_pkey else None
        # A valid-P_Key flood (Section 7) only breaches the attacker's own
        # partition — other nodes would reject the key anyway.
        targets = (
            sorted(sm.partitions[node_partition[lid]] - {lid})
            if config.attack_valid_pkey
            else [l for l in lids]
        )
        flooder = RandomPKeyFlooder(
            engine, fabric.hca(lid), qps[lid], targets,
            valid_indices, config.mtu_bytes, byte_ps,
            streams.get("attack", lid), windows,
            classes=config.attacker_classes, valid_pkey=valid_pkey,
            backlog=config.attacker_backlog,
            dest_strategy=config.attack_dest_strategy,
            registry=fabric.registry,
            ramp_from_ps=round(config.attack_start_us * PS_PER_US),
            ramp_ps=round(config.attack_ramp_us * PS_PER_US),
        )
        flooder.start()
        flooders.append(flooder)

    return engine, fabric, sources, flooders, windows, key_manager


def run_simulation(
    config: SimConfig,
    tracer: Tracer | None = None,
    setup=None,
    metrics_port: int | None = None,
) -> SimReport:
    """Run one experiment end to end and return its report.

    *tracer* (optional) receives the run's lifecycle events; the report
    itself always carries the full counter-registry snapshot.  *setup*
    (optional) is called as ``setup(engine, fabric)`` after the experiment
    is built but before the clock starts — the hook fault-injection and
    fuzzing harnesses use to install link faults, switch crashes, wire
    tamperers, and raw packet injections into an otherwise stock run.
    *metrics_port* (optional) serves live counter/trace snapshots over
    HTTP for the duration of the run (0 = ephemeral port; see
    :mod:`repro.sim.metrics_server`).
    """
    if config.shards > 1:
        config.validate()
        if tracer is not None or setup is not None or metrics_port is not None:
            raise ValueError(
                "sharded runs (config.shards > 1) do not support tracer, "
                "setup hooks, or the live metrics server — run those "
                "against the single-process engine"
            )
        from repro.sim.shard import run_sharded

        return run_sharded(config)
    t0 = time.perf_counter()
    engine, fabric, sources, flooders, windows, key_manager = build_experiment(
        config, tracer=tracer
    )
    if setup is not None:
        setup(engine, fabric)
    server = None
    if metrics_port is not None:
        from repro.sim.metrics_server import MetricsServer

        server = MetricsServer(engine, fabric.registry, tracer, port=metrics_port)
        server.start()
    try:
        engine.run(until=config.sim_time_ps)
    finally:
        if server is not None:
            server.stop()
    wall = time.perf_counter() - t0

    metrics = fabric.metrics
    stats = {
        name: ClassStats(
            queuing_us=metrics.queuing_us(name),
            network_us=metrics.network_us(name),
            queuing_std_us=metrics.queuing_std_us(name),
            network_std_us=metrics.network_std_us(name),
            count=metrics.count(name),
        )
        for name in metrics.classes()
    }
    senders = {"best_effort": 0, "realtime": 0}
    for src in sources:
        if isinstance(src, BestEffortSource):
            senders["best_effort"] += 1
        elif isinstance(src, RealtimeSource):
            senders["realtime"] += 1
    registry = fabric.registry
    return SimReport(
        config=config,
        stats=stats,
        drops=dict(metrics.dropped),
        delivered=metrics.delivered,
        attack_windows=windows,
        switch_filtered=int(registry.total("switch.*.filtered_drops")),
        switch_lookups=int(registry.total("filter.*.lookups")),
        sif_activations=int(registry.total("filter.*.activations")),
        sif_deactivations=int(registry.total("filter.*.deactivations")),
        traps_received=int(registry.get("sm.traps_received")),
        traps_processed=int(registry.get("sm.traps_processed")),
        key_exchanges=int(getattr(key_manager, "exchanges", 0)),
        events_processed=engine.events_processed,
        wall_seconds=wall,
        senders=senders,
        metrics=metrics.summary() if config.keep_samples else None,
        counters=registry.snapshot(),
    )
