"""Live metrics endpoint — poll a running simulation over HTTP.

A :class:`MetricsServer` wraps a running engine, its counter registry,
and (optionally) the trace bus, and serves JSON snapshots from a daemon
thread on stdlib :mod:`http.server` — no third-party dependencies, no
effect on simulation results (reads are snapshot-based and the sim
thread never blocks on the server).

Endpoints:

``/metrics``
    Full snapshot: simulated clock, events processed, pending events,
    every counter, and the newest trace events (bounded tail).
``/counters``
    Counters only (cheap to poll in a tight loop).
``/healthz``
    Liveness probe: ``{"ok": true}``.

Attach to a run with ``run_simulation(..., metrics_port=8123)``, the
``repro-sim serve-metrics`` subcommand, or directly::

    server = MetricsServer(engine, fabric.registry, tracer)
    url = server.start()     # http://127.0.0.1:<port>
    ...
    server.stop()

``port=0`` (the default) binds an ephemeral port — read it back from
``server.port`` after :meth:`~MetricsServer.start`.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from repro.sim.counters import CounterRegistry
from repro.sim.engine import Engine
from repro.sim.trace import Tracer

#: Newest trace events included in a ``/metrics`` response.
TRACE_TAIL = 50


class MetricsServer:
    """Serve engine/counter/trace snapshots over HTTP from a daemon thread."""

    def __init__(
        self,
        engine: Engine,
        registry: CounterRegistry,
        tracer: Tracer | None = None,
        host: str = "127.0.0.1",
        port: int = 0,
        trace_tail: int = TRACE_TAIL,
    ) -> None:
        self._engine = engine
        self._registry = registry
        self._tracer = tracer
        self._host = host
        self._port = port
        self._trace_tail = trace_tail
        self._httpd: ThreadingHTTPServer | None = None
        self._thread: threading.Thread | None = None

    # -- snapshot payloads ---------------------------------------------------

    def counters_payload(self) -> dict:
        return {"counters": self._registry.snapshot()}

    def metrics_payload(self) -> dict:
        engine = self._engine
        payload = {
            "now_ps": engine.now,
            "now_us": engine.now_us,
            "events_processed": engine.events_processed,
            "pending_events": engine.pending_count,
            "scheduler": engine.scheduler_mode,
            "counters": self._registry.snapshot(),
        }
        if self._tracer is not None:
            # events is a deque under max_events — snapshot before slicing
            tail = list(self._tracer.events)[-self._trace_tail:]
            payload["trace_tail"] = [
                {
                    "time_ps": e.time_ps,
                    "kind": e.kind,
                    "where": e.where,
                    "packet_id": e.packet_id,
                    "detail": e.detail,
                }
                for e in tail
            ]
        return payload

    # -- lifecycle -----------------------------------------------------------

    @property
    def port(self) -> int:
        """Bound port (resolves an ephemeral ``port=0`` after ``start``)."""
        if self._httpd is not None:
            return self._httpd.server_address[1]
        return self._port

    @property
    def url(self) -> str:
        return f"http://{self._host}:{self.port}"

    def start(self) -> str:
        """Bind, start serving from a daemon thread, return the base URL."""
        if self._httpd is not None:
            return self.url
        server = self

        class Handler(BaseHTTPRequestHandler):
            def do_GET(self) -> None:  # noqa: N802 (http.server API)
                if self.path == "/metrics":
                    body = server.metrics_payload()
                elif self.path == "/counters":
                    body = server.counters_payload()
                elif self.path == "/healthz":
                    body = {"ok": True}
                else:
                    self.send_error(404, "unknown endpoint")
                    return
                data = json.dumps(body).encode()
                self.send_response(200)
                self.send_header("Content-Type", "application/json")
                self.send_header("Content-Length", str(len(data)))
                self.end_headers()
                self.wfile.write(data)

            def log_message(self, *args) -> None:  # silence per-request noise
                pass

        self._httpd = ThreadingHTTPServer((self._host, self._port), Handler)
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            name="repro-metrics-server",
            daemon=True,
        )
        self._thread.start()
        return self.url

    def stop(self) -> None:
        """Shut the server down and join its thread."""
        if self._httpd is None:
            return
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
        self._httpd = None
        self._thread = None

    def __enter__(self) -> "MetricsServer":
        self.start()
        return self

    def __exit__(self, *exc) -> None:
        self.stop()
