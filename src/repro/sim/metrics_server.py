"""Live metrics endpoint — poll a running simulation over HTTP.

A :class:`MetricsServer` wraps a running engine, its counter registry,
and (optionally) the trace bus, and serves JSON snapshots from a daemon
thread on stdlib :mod:`http.server` — no third-party dependencies, no
effect on simulation results (reads are snapshot-based and the sim
thread never blocks on the server).

Endpoints:

``/metrics``
    Full snapshot: simulated clock, events processed, pending events,
    every counter, and the newest trace events (bounded tail).
``/counters``
    Counters only (cheap to poll in a tight loop).
``/healthz``
    Liveness probe: ``{"ok": true}``.
``/version``
    Package identity: ``{"name": "repro", "version": ...}``.

Attach to a run with ``run_simulation(..., metrics_port=8123)``, the
``repro-sim serve-metrics`` subcommand, or directly::

    server = MetricsServer(engine, fabric.registry, tracer)
    url = server.start()     # http://127.0.0.1:<port>
    ...
    server.stop()

``port=0`` (the default) binds an ephemeral port — read it back from
``server.port`` after :meth:`~MetricsServer.start`.  The lifecycle is
restartable: ``stop()`` releases the socket and a later ``start()``
re-binds on the *resolved* port (an ephemeral first bind pins the port
number, so the URL stays stable across restarts).

The module also exports the building blocks the job service
(:mod:`repro.service`) embeds: :class:`JsonRequestHandler` (JSON bodies
for every response **including errors** — a machine client never sees
``http.server``'s HTML error pages) and :class:`JsonHttpServer` (the
restartable bind/serve/stop lifecycle), plus the payload helpers
(:func:`trace_event_dict`, :func:`version_payload`).
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from repro import __version__
from repro.sim.counters import CounterRegistry
from repro.sim.engine import Engine
from repro.sim.trace import Tracer

#: Newest trace events included in a ``/metrics`` response.
TRACE_TAIL = 50


def trace_event_dict(event) -> dict:
    """One trace event as a JSON-ready dict (the wire shape every
    endpoint that exports trace events shares)."""
    return {
        "time_ps": event.time_ps,
        "kind": event.kind,
        "where": event.where,
        "packet_id": event.packet_id,
        "detail": event.detail,
    }


def version_payload() -> dict:
    """The ``/version`` body (shared by metrics and job-service APIs)."""
    return {"name": "repro", "version": __version__}


class JsonRequestHandler(BaseHTTPRequestHandler):
    """Request handler base that speaks JSON for *every* response.

    ``send_error`` is overridden so even the paths inside
    :class:`BaseHTTPRequestHandler` itself (malformed request line,
    unsupported method) produce a JSON body — an embedding service never
    leaks the stdlib HTML error page to its machine clients.
    """

    server_version = "repro-sim"

    def send_json(
        self,
        body: dict,
        status: int = 200,
        extra_headers: dict[str, str] | None = None,
    ) -> None:
        data = json.dumps(body).encode()
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(data)))
        for name, value in (extra_headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(data)

    def send_json_error(
        self,
        status: int,
        message: str,
        extra_headers: dict[str, str] | None = None,
        **fields,
    ) -> None:
        self.send_json(
            {"error": message, "status": status, **fields},
            status=status,
            extra_headers=extra_headers,
        )

    def send_error(  # noqa: D102 (stdlib override)
        self, code, message=None, explain=None
    ) -> None:
        try:
            self.send_json_error(code, message or str(code))
        except (BrokenPipeError, ConnectionError, OSError):
            pass  # client already gone; nothing to report to

    def log_message(self, *args) -> None:  # silence per-request noise
        pass


class JsonHttpServer:
    """Restartable stdlib HTTP server lifecycle (bind / serve / stop).

    Subclasses implement :meth:`_handler_class` returning the
    :class:`JsonRequestHandler` subclass that routes their endpoints.
    ``start()`` after ``stop()`` re-binds: the first bind resolves an
    ephemeral ``port=0`` to a concrete port number which later starts
    reuse, so ``url`` is stable across the whole object lifetime.
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 0) -> None:
        self._host = host
        self._port = port
        self._httpd: ThreadingHTTPServer | None = None
        self._thread: threading.Thread | None = None

    def _handler_class(self) -> type[BaseHTTPRequestHandler]:
        raise NotImplementedError

    @property
    def running(self) -> bool:
        return self._httpd is not None

    @property
    def port(self) -> int:
        """Bound port (resolves an ephemeral ``port=0`` after ``start``)."""
        if self._httpd is not None:
            return self._httpd.server_address[1]
        return self._port

    @property
    def url(self) -> str:
        return f"http://{self._host}:{self.port}"

    def start(self) -> str:
        """Bind, start serving from a daemon thread, return the base URL."""
        if self._httpd is not None:
            return self.url
        self._httpd = ThreadingHTTPServer(
            (self._host, self._port), self._handler_class()
        )
        # Pin the resolved port so a stop()/start() cycle re-binds the same
        # port a first ephemeral bind chose (stable URL across restarts).
        self._port = self._httpd.server_address[1]
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            name=f"{type(self).__name__}-http",
            daemon=True,
        )
        self._thread.start()
        return self.url

    def stop(self) -> None:
        """Shut the server down and join its thread (idempotent)."""
        if self._httpd is None:
            return
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
        self._httpd = None
        self._thread = None

    def __enter__(self):
        self.start()
        return self

    def __exit__(self, *exc) -> None:
        self.stop()


class MetricsServer(JsonHttpServer):
    """Serve engine/counter/trace snapshots over HTTP from a daemon thread."""

    def __init__(
        self,
        engine: Engine,
        registry: CounterRegistry,
        tracer: Tracer | None = None,
        host: str = "127.0.0.1",
        port: int = 0,
        trace_tail: int = TRACE_TAIL,
    ) -> None:
        super().__init__(host=host, port=port)
        self._engine = engine
        self._registry = registry
        self._tracer = tracer
        self._trace_tail = trace_tail

    # -- snapshot payloads ---------------------------------------------------

    def counters_payload(self) -> dict:
        return {"counters": self._registry.snapshot()}

    def metrics_payload(self) -> dict:
        engine = self._engine
        payload = {
            "now_ps": engine.now,
            "now_us": engine.now_us,
            "events_processed": engine.events_processed,
            "pending_events": engine.pending_count,
            "scheduler": engine.scheduler_mode,
            "counters": self._registry.snapshot(),
        }
        if self._tracer is not None:
            # events is a deque under max_events — snapshot before slicing
            tail = list(self._tracer.events)[-self._trace_tail:]
            payload["trace_tail"] = [trace_event_dict(e) for e in tail]
        return payload

    # -- request routing -----------------------------------------------------

    def _handler_class(self) -> type[BaseHTTPRequestHandler]:
        server = self

        class Handler(JsonRequestHandler):
            def do_GET(self) -> None:  # noqa: N802 (http.server API)
                if self.path == "/metrics":
                    body = server.metrics_payload()
                elif self.path == "/counters":
                    body = server.counters_payload()
                elif self.path == "/healthz":
                    body = {"ok": True}
                elif self.path == "/version":
                    body = version_payload()
                else:
                    self.send_json_error(404, "unknown endpoint", path=self.path)
                    return
                self.send_json(body)

        return Handler
