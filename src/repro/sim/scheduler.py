"""Pluggable event schedulers — binary heap oracle vs calendar queue.

The engine orders events by ``(time, priority, seq)`` and must do so
**bit-identically** regardless of the queue structure underneath: DoS
experiments schedule thousands of same-instant events whose relative
order is observable through counters and traces.  This module provides
two interchangeable implementations of that total order:

``heap``
    The pre-scale-up binary heap (``heapq``), kept verbatim as the
    *oracle*.  O(log n) per operation, n = pending events — at
    fat-tree scale the heap itself dominates the event loop.

``wheel``
    A calendar queue (single-level time wheel over absolute slot
    numbers).  Events hash into buckets of ``2**SLOT_BITS`` picoseconds
    by plain integer shift; buckets are unsorted until the clock
    reaches them, then sorted once and drained in order.  A small heap
    of *active slot numbers* (ints) replaces the heap of events, so
    push is O(1) amortized and pop touches a log-sized structure only
    once per bucket instead of once per event.  Events that land in the
    bucket currently being drained are inserted in order with
    ``bisect.insort`` past the drain point — this is what makes the pop
    sequence exactly the heap's, including same-instant ties.

Mode selection mirrors :mod:`repro.datapath`: :func:`set_scheduler`
switches the family used by newly built engines, :func:`get_scheduler`
reports it, and the ``REPRO_SCHEDULER`` environment variable
(``wheel`` | ``heap``) picks the initial mode at import; the default is
``wheel``.  An :class:`~repro.sim.engine.Engine` samples the mode at
construction, so a mode flip never mutates a live run.

The ``wheel`` mode is also the flag for the rest of the scale core:
the engine enables its event free-list pool and links coalesce
same-instant credit returns only under ``wheel``, keeping ``heap`` a
faithful pre-scale-up oracle for the differential fuzz harness.
"""

from __future__ import annotations

import heapq
import os
from bisect import insort
from typing import Any

#: A queue entry: (time, priority, seq, Event).  Ordered by C-level tuple
#: comparison; seq is unique so the Event object is never compared.
Entry = tuple[int, int, int, Any]

MODES = ("wheel", "heap")

#: Bucket width exponent: 2**13 ps = 8.192 ns per slot.  Chosen against the
#: paper's timing constants (byte time 3200 ps, credit return 40 ns, wire
#: 10 ns): most same-instant bursts share a slot while distinct delays spread
#: across slots, which benchmarked fastest at 20k-100k pending events.
SLOT_BITS = 13


class HeapScheduler:
    """The oracle: one binary heap of entries (the pre-scale-up queue)."""

    __slots__ = ("_q",)

    def __init__(self, now: int = 0) -> None:
        self._q: list[Entry] = []

    def __len__(self) -> int:
        return len(self._q)

    def push(self, entry: Entry) -> None:
        heapq.heappush(self._q, entry)

    def peek(self) -> Entry | None:
        """Next live entry without consuming it (cancelled entries are
        discarded as they surface).  ``pop_head`` consumes it in O(log n)."""
        q = self._q
        while q:
            entry = q[0]
            if entry[3].cancelled:
                heapq.heappop(q)
                continue
            return entry
        return None

    def pop_head(self) -> None:
        """Consume the entry the immediately preceding :meth:`peek` returned."""
        heapq.heappop(self._q)

    def drain(self, engine, until: int | None, max_events: int | None) -> bool:
        """Fire events in order until the queue empties, *until* passes, or
        *max_events* have run.  Returns True when the budget cut the drain
        short with a live entry still queued.

        This is the pre-scale-up event loop verbatim — one inline heap pop
        per event, no pooling (heap-mode engines never create pooled
        events) — so the oracle leg of a benchmark pays exactly the costs
        the original engine did.
        """
        q = self._q
        heappop = heapq.heappop
        count = 0
        budget = -1 if max_events is None else max_events
        while q:
            entry = q[0]
            ev = entry[3]
            if ev.cancelled:
                heappop(q)
                continue
            if count == budget:
                return True
            t = entry[0]
            if until is not None and t > until:
                return False
            heappop(q)
            engine._now = t
            ev.fn(*ev.args)
            engine._processed += 1
            count += 1
        return False


class WheelScheduler:
    """Calendar queue over absolute slot numbers ``time >> SLOT_BITS``.

    Invariants:

    * ``_cur`` is the slot currently being drained; ``_head`` is its
      entry list, sorted, with ``_hi`` entries already consumed.
    * ``_slots`` maps every *future* active slot number to its unsorted
      entry list; ``_slot_heap`` is a min-heap of exactly those keys.
    * Pushes never land before ``now`` (the engine validates), so a push
      either targets ``_cur`` — inserted in sorted position past the
      drain point — or a future slot's unsorted list.
    """

    __slots__ = ("_slots", "_slot_heap", "_head", "_hi", "_cur", "_size")

    def __init__(self, now: int = 0) -> None:
        self._slots: dict[int, list[Entry]] = {}
        self._slot_heap: list[int] = []
        self._head: list[Entry] = []
        self._hi = 0
        self._cur = now >> SLOT_BITS
        self._size = 0

    def __len__(self) -> int:
        return self._size

    def push(self, entry: Entry) -> None:
        slot = entry[0] >> SLOT_BITS
        if slot == self._cur:
            # Lands in the bucket being drained: keep it ordered relative to
            # the not-yet-consumed tail.  lo=_hi is correct because the entry
            # cannot sort before anything already consumed (time >= now and
            # its seq is the largest yet issued).
            insort(self._head, entry, lo=self._hi)
        else:
            bucket = self._slots.get(slot)
            if bucket is None:
                self._slots[slot] = [entry]
                heapq.heappush(self._slot_heap, slot)
            else:
                bucket.append(entry)
        self._size += 1

    def peek(self) -> Entry | None:
        hi = self._hi
        head = self._head
        size = self._size
        while True:
            while hi < len(head):
                entry = head[hi]
                if entry[3].cancelled:
                    hi += 1
                    size -= 1
                    continue
                self._hi = hi
                self._size = size
                return entry
            if not self._slot_heap:
                self._hi = hi
                self._size = size
                return None
            slot = heapq.heappop(self._slot_heap)
            bucket = self._slots.pop(slot)
            if len(bucket) > 1:
                bucket.sort()
            self._head = head = bucket
            self._hi = hi = 0
            self._cur = slot

    def pop_head(self) -> None:
        """Consume the entry the immediately preceding :meth:`peek` returned."""
        self._hi += 1
        self._size -= 1

    def drain(self, engine, until: int | None, max_events: int | None) -> bool:
        """Fire events in order (see :meth:`HeapScheduler.drain` contract).

        The peek/pop pair is fused into one loop over the current bucket
        with the cursor held in a local.  ``self._hi``/``self._size`` are
        written back *before* every callback — a callback may push into the
        bucket being drained, and :meth:`push` positions that insort at
        ``lo=self._hi`` — and on every exit path.
        """
        slots = self._slots
        slot_heap = self._slot_heap
        heappop = heapq.heappop
        pool = engine._pool
        head = self._head
        hi = self._hi
        count = 0
        budget = -1 if max_events is None else max_events
        while True:
            if hi >= len(head):
                if not slot_heap:
                    self._hi = hi
                    return False
                slot = heappop(slot_heap)
                bucket = slots.pop(slot)
                if len(bucket) > 1:
                    bucket.sort()
                self._head = head = bucket
                self._hi = hi = 0
                self._cur = slot
                continue
            entry = head[hi]
            ev = entry[3]
            if ev.cancelled:
                hi += 1
                self._size -= 1
                continue
            if count == budget:
                self._hi = hi
                return True
            t = entry[0]
            if until is not None and t > until:
                self._hi = hi
                return False
            hi += 1
            self._hi = hi
            self._size -= 1
            engine._now = t
            ev.fn(*ev.args)
            engine._processed += 1
            count += 1
            if ev.pooled:
                ev.fn = None
                ev.args = ()
                pool.append(ev)
            if head is not self._head or hi != self._hi:
                # a callback re-entered run()/step() or pushed into the
                # current bucket behind the cursor — resynchronize
                head = self._head
                hi = self._hi


_SCHEDULERS = {"heap": HeapScheduler, "wheel": WheelScheduler}

_mode = "wheel"


def set_scheduler(mode: str) -> None:
    """Select the scheduler family for engines built from now on.

    ``"wheel"`` — calendar queue plus the rest of the scale core (event
    pooling, link credit coalescing).  ``"heap"`` — the pre-scale-up
    binary heap with per-event allocation (the oracle).  Simulation
    results are identical in both modes; only wall-clock changes.
    """
    global _mode
    if mode not in MODES:
        raise ValueError(f"unknown scheduler mode {mode!r}; choose from {MODES}")
    _mode = mode


def get_scheduler() -> str:
    """Current mode — what the next ``Engine()`` will be built with."""
    return _mode


def make_scheduler(mode: str, now: int = 0) -> HeapScheduler | WheelScheduler:
    """Instantiate the queue structure for *mode* (engine internal)."""
    try:
        cls = _SCHEDULERS[mode]
    except KeyError:
        raise ValueError(f"unknown scheduler mode {mode!r}; choose from {MODES}") from None
    return cls(now)


_env_mode = os.environ.get("REPRO_SCHEDULER")
if _env_mode:
    set_scheduler(_env_mode)
