"""One switch for the fast-vs-reference packet datapath.

The fast datapath is four independent, individually-toggleable layers that
are all **bit-identical** to their reference counterparts:

* cached header/packet serialization (:mod:`repro.iba.packet`),
* table-driven CRC-16 + prefix-folded CRCs with a ``zlib.crc32`` backend
  (:mod:`repro.iba.crc`, :mod:`repro.crypto.crc32`),
* the prepare→verify MAC tag memo (:mod:`repro.core.auth`),
* the Bloom-filter probe-position memo (:mod:`repro.core.bloom`).

:func:`set_datapath` flips them together so benchmarks and equivalence
tests can run the exact same simulation twice — once the way the code
worked before this optimization pass ("reference"), once with everything on
("fast") — and diff wall-clock while asserting identical counters/traces.

The ``REPRO_DATAPATH`` environment variable (``fast`` | ``reference``)
selects the initial mode when this module is first imported; the default is
``fast``.
"""

from __future__ import annotations

import os

import importlib

from repro.core import auth as _auth
from repro.core import bloom as _bloom
from repro.iba import crc as _ibacrc
from repro.iba import packet as _packet

# repro.crypto's __init__ re-exports the crc32 *function* under the same name
# as the submodule, so a plain ``import repro.crypto.crc32 as _crc32`` would
# bind the function — resolve the module explicitly.
_crc32 = importlib.import_module("repro.crypto.crc32")

MODES = ("fast", "reference")


def set_datapath(mode: str) -> None:
    """Select the packet-datapath implementation family.

    ``"fast"`` — serialization caches on, table CRC-16, zlib CRC-32
    backend, MAC tag memo on.  ``"reference"`` — every cache off, bit-serial
    CRC-16, pure-python CRC-32 (the pre-optimization behavior).  Simulation
    results are identical in both modes; only wall-clock changes.
    """
    if mode not in MODES:
        raise ValueError(f"unknown datapath mode {mode!r}; choose from {MODES}")
    fast = mode == "fast"
    _packet.set_serialization_cache(fast)
    _ibacrc.set_crc16_impl("table" if fast else "bitwise")
    _crc32.set_crc32_backend("zlib" if fast else "pure")
    _auth.set_tag_memo(fast)
    _bloom.set_position_memo(fast)


def get_datapath() -> str:
    """Current mode — ``"fast"`` only when every layer is in its fast state."""
    fast = (
        _packet.serialization_cache_enabled()
        and _ibacrc.get_crc16_impl() == "table"
        and _crc32.get_crc32_backend() == "zlib"
        and _auth.tag_memo_enabled()
        and _bloom.position_memo_enabled()
    )
    return "fast" if fast else "reference"


_env_mode = os.environ.get("REPRO_DATAPATH")
if _env_mode:
    set_datapath(_env_mode)
