"""Ablation — VL buffer depth (credits) and where congestion waits.

DESIGN.md's key modelling decision: shallow per-VL buffers reproduce the
paper's signature ("queuing time increases significantly while network
latency increases marginally") because credit-based flow control pushes
congestion back to the source HCA.  Deep buffers absorb the same load
*inside* the fabric instead, inflating network latency — the opposite
signature.  This ablation sweeps the depth under a 4-attacker flood and
prints both components.
"""

from repro.experiments.fig1_dos import fig1_config
from repro.sim.runner import run_simulation

from benchmarks.conftest import emit

DEPTHS = (2, 4, 8, 16)


def test_ablation_buffer_depth(benchmark):
    def sweep():
        rows = []
        for depth in DEPTHS:
            cfg = fig1_config("best_effort", attackers=4, sim_time_us=1200.0)
            cfg = cfg.replace(vl_buffer_packets=depth)
            r = run_simulation(cfg)
            s = r.cls("best_effort")
            rows.append((depth, s.queuing_us, s.network_us))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    emit("")
    emit("Ablation — VL buffer depth under 4-attacker flood (best-effort)")
    emit(f"{'credits/VL':>11} {'queuing us':>11} {'network us':>11} {'queue share':>12}")
    for depth, q, n in rows:
        emit(f"{depth:>11} {q:>11.2f} {n:>11.2f} {q / (q + n):>12.1%}")

    # deeper buffers shift waiting from the source queue into the fabric
    shallow_q, shallow_n = rows[0][1], rows[0][2]
    deep_q, deep_n = rows[-1][1], rows[-1][2]
    assert deep_n > shallow_n  # more in-network waiting with deep buffers
    assert shallow_q / (shallow_q + shallow_n) > deep_q / (deep_q + deep_n)
