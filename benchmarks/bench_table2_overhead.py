"""Table 2 — partition enforcement overhead (analytical + measured).

Prints the paper's formulas evaluated for the testbed and a large subnet,
plus the live simulator's lookup counters confirming the per-packet column's
ordering.  Benchmarks the model evaluation and the SIF filter hot path.
"""

from repro.core.enforcement import SIFPortFilter
from repro.core.overhead import EnforcementOverheadModel, f_linear
from repro.experiments.table2_overhead import format_table2, measured_lookups, run_table2
from repro.iba.keys import PKey
from repro.sim.engine import Engine

from benchmarks.conftest import emit
from tests.conftest import make_packet


def test_table2_analytical(benchmark):
    cases = benchmark(run_table2)
    emit("")
    emit(format_table2(cases))
    testbed = cases[0]
    rows = {r.scheme: r for r in testbed.rows}
    assert rows["DPT"].memory_per_switch == 16
    assert rows["IF"].memory_per_switch == 1
    assert rows["SIF"].lookups_per_packet < rows["IF"].lookups_per_packet


def test_table2_measured_lookups(benchmark):
    counts = benchmark.pedantic(
        lambda: measured_lookups(sim_time_us=600.0), rounds=1, iterations=1
    )
    emit("")
    emit("Table 2 (measured) — switch lookups during identical 600 us runs")
    for mode, n in counts.items():
        emit(f"  {mode:<4} {n:>8} lookups")
    assert counts["dpt"] > counts["if"] > counts["sif"]


def test_sif_filter_hot_path(benchmark):
    """Per-packet cost of the SIF check itself (enabled, blacklist mode)."""
    engine = Engine()
    filt = SIFPortFilter(engine, {1, 2, 3, 4}, lookup_ns=5.0, idle_timeout_us=1e9)
    filt.register_invalid(PKey(0x7999), 0)
    pkt = make_packet(pkey=PKey(0x8001))
    result = benchmark(lambda: filt.process(pkt, 0))
    assert result[0] is True
