"""Figure 5 — No Filtering vs DPT vs IF vs SIF under a 1%-duty DoS.

Prints the full 4-load x 4-mode bar table (network + queuing delay of
non-attacking traffic), the paper's excluding-attack-period IF/SIF aside,
and asserts the reproducible orderings:

* filtering modes stop the flood in switches; No Filtering doesn't;
* DPT pays lookup latency at every hop, IF only at the ingress;
* SIF performs lookups only during attack windows;
* excluding attack windows, SIF < IF (paper: 13.65 vs 14.19 µs).
"""

import pytest

from repro.experiments.fig5_enforcement import (
    format_fig5,
    run_fig5,
    run_fig5_excluding_attack,
)
from repro.sim.config import EnforcementMode
from repro.sim.runner import run_simulation
from repro.experiments.fig5_enforcement import fig5_config

from benchmarks.conftest import emit, sweep_cache, sweep_workers

SIM_US = 6000.0


def test_fig5_bars(benchmark):
    from repro.analysis.charts import sweep_progress_chart

    events = []
    bars = benchmark.pedantic(
        lambda: run_fig5(
            sim_time_us=SIM_US,
            seeds=(11, 12),
            workers=sweep_workers(),
            cache=sweep_cache(),
            progress=events.append,
        ),
        rounds=1,
        iterations=1,
    )
    emit("")
    emit(format_fig5(bars))
    emit("")
    emit(sweep_progress_chart(events, title=f"Fig 5 sweep ({sweep_workers()} workers)"))

    by = {(b.mode, b.input_load): b for b in bars}
    for load in (0.4, 0.5, 0.6, 0.7):
        assert by[("dpt", load)].filtered_at_switches > 0
        assert by[("if", load)].filtered_at_switches > 0
        assert by[("none", load)].filtered_at_switches == 0
        # DPT's per-hop lookups show in network delay vs IF's single lookup
        assert by[("dpt", load)].network_us > by[("if", load)].network_us
    # totals rise with load for every mode
    for mode in ("none", "dpt", "if", "sif"):
        assert by[(mode, 0.7)].total_us > by[(mode, 0.4)].total_us


def test_fig5_excluding_attack_period(benchmark):
    """The paper's quoted aside: IF 14.19 us vs SIF 13.65 us."""

    def run():
        if_t = sum(run_fig5_excluding_attack(EnforcementMode.IF, 0.40, SIM_US))
        sif_t = sum(run_fig5_excluding_attack(EnforcementMode.SIF, 0.40, SIM_US))
        return if_t, sif_t

    if_t, sif_t = benchmark.pedantic(run, rounds=1, iterations=1)
    emit("")
    emit(
        f"Fig 5 aside — overall delay excluding the attacking period: "
        f"IF {if_t:.2f} us vs SIF {sif_t:.2f} us (paper: 14.19 vs 13.65)"
    )
    assert sif_t < if_t


def test_fig5_single_bar_kernel(benchmark):
    """Representative kernel for timing: one SIF bar at 50% load."""
    cfg = fig5_config(EnforcementMode.SIF, 0.5, sim_time_us=1000.0)
    report = benchmark.pedantic(lambda: run_simulation(cfg), rounds=2, iterations=1)
    assert report.delivered > 0
