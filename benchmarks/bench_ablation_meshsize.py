"""Ablation — fabric scale vs DoS blast radius.

The paper evaluates one 16-node mesh; a natural question for anyone
adopting SIF is how the single-flooder damage and the SIF containment
scale with fabric size.  Sweeps square meshes and prints, per size:
best-effort queuing under one attacker with no filtering vs with SIF,
and the fraction of flood packets SIF kills at the ingress.
"""

from repro.sim.config import EnforcementMode, SimConfig
from repro.sim.runner import run_simulation

from benchmarks.conftest import emit

SIZES = (2, 3, 4)


def _cfg(size, mode):
    return SimConfig(
        mesh_width=size, mesh_height=size,
        num_partitions=min(4, size * size // 2),
        sim_time_us=1200.0, seed=6,
        best_effort_load=0.45, enable_realtime=False,
        num_attackers=1, attacker_classes=("best_effort",),
        attacker_backlog=64,
        enforcement=mode,
        keep_samples=False,
    )


def test_ablation_mesh_size(benchmark):
    def sweep():
        rows = []
        for size in SIZES:
            none = run_simulation(_cfg(size, EnforcementMode.NONE))
            sif = run_simulation(_cfg(size, EnforcementMode.SIF))
            flood_total = sif.switch_filtered + sif.drops.get("pkey", 0)
            contained = sif.switch_filtered / flood_total if flood_total else 0.0
            rows.append(
                (
                    size * size,
                    none.cls("best_effort").queuing_us,
                    sif.cls("best_effort").queuing_us,
                    contained,
                )
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    emit("")
    emit("Ablation — mesh size vs one-flooder damage and SIF containment")
    emit(f"{'nodes':>6} {'queuing none':>13} {'queuing SIF':>12} {'flood killed at ingress':>24}")
    for nodes, q_none, q_sif, contained in rows:
        emit(f"{nodes:>6} {q_none:>13.2f} {q_sif:>12.2f} {contained:>24.1%}")

    for nodes, q_none, q_sif, contained in rows:
        # SIF must contain the overwhelming majority of the flood at every scale
        assert contained > 0.8
        # and never leave legit traffic worse off than no filtering
        assert q_sif <= q_none * 1.2 + 1.0
