"""Ablation — the P_Key-lookup-cost knob behind Figure 5's DPT/IF gap.

The paper's switch cycle time is unpublished; EXPERIMENTS.md calibrates
``pkey_lookup_ns`` from the quoted IF-vs-SIF 0.54 µs difference.  This
ablation sweeps the knob and shows the two properties that hold at *any*
positive value (so Figure 5's orderings don't depend on the calibration):

* DPT latency grows ~hops× faster than IF latency in the lookup cost;
* SIF pays nothing while idle, independent of the knob.
"""

import pytest

from repro.sim.config import EnforcementMode, SimConfig
from repro.sim.runner import run_simulation

from benchmarks.conftest import emit

SWEEP_NS = (5.0, 100.0, 250.0, 500.0, 1000.0)


def _run(mode, lookup_ns):
    cfg = SimConfig(
        sim_time_us=600.0, seed=42, num_attackers=0,
        best_effort_load=0.3, enforcement=mode, pkey_lookup_ns=lookup_ns,
        keep_samples=False,
    )
    return run_simulation(cfg)


def test_ablation_lookup_cost(benchmark):
    def sweep():
        rows = []
        for ns in SWEEP_NS:
            none = _run(EnforcementMode.NONE, ns).cls("best_effort").network_us
            dpt = _run(EnforcementMode.DPT, ns).cls("best_effort").network_us
            if_ = _run(EnforcementMode.IF, ns).cls("best_effort").network_us
            sif = _run(EnforcementMode.SIF, ns).cls("best_effort").network_us
            rows.append((ns, none, dpt, if_, sif))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    emit("")
    emit("Ablation — pkey_lookup_ns vs best-effort network latency (us, no attack)")
    emit(f"{'lookup ns':>10} {'none':>8} {'dpt':>8} {'if':>8} {'sif':>8} {'dpt-if gap':>11}")
    for ns, none, dpt, if_, sif in rows:
        emit(f"{ns:>10.0f} {none:>8.2f} {dpt:>8.2f} {if_:>8.2f} {sif:>8.2f} {dpt - if_:>11.3f}")

    # invariants across the whole sweep
    for ns, none, dpt, if_, sif in rows:
        assert dpt > if_  # per-hop beats per-ingress at any positive cost
        assert abs(sif - none) < 0.3  # idle SIF is free
    # the DPT-IF gap grows with the knob
    gaps = [dpt - if_ for _, _, dpt, if_, _ in rows]
    assert gaps[-1] > gaps[0] * 3
