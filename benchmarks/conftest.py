"""Benchmark harness helpers.

Every benchmark regenerates one of the paper's tables/figures.  ``emit``
collects the reproduced rows; a terminal-summary hook prints them after
pytest's capture ends, so `pytest benchmarks/ --benchmark-only` always
shows the paper artifacts inline (fd-level capture would otherwise swallow
mid-test prints).
"""

import pytest

_EMITTED: list[str] = []


def emit(text: str) -> None:
    """Queue a line of reproduced-artifact output (also printed live when
    capture is off, e.g. with -s)."""
    _EMITTED.append(text)
    print(text)


@pytest.fixture(scope="session")
def report_sink():
    return emit


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    if not _EMITTED:
        return
    terminalreporter.write_line("")
    terminalreporter.write_line("=" * 72)
    terminalreporter.write_line("reproduced paper artifacts (tables & figure series)")
    terminalreporter.write_line("=" * 72)
    for line in _EMITTED:
        terminalreporter.write_line(line)
