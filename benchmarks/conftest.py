"""Benchmark harness helpers.

Every benchmark regenerates one of the paper's tables/figures.  ``emit``
collects the reproduced rows; a terminal-summary hook prints them after
pytest's capture ends, so `pytest benchmarks/ --benchmark-only` always
shows the paper artifacts inline (fd-level capture would otherwise swallow
mid-test prints).
"""

import os

import pytest

_EMITTED: list[str] = []


def sweep_workers(default: int = 2) -> int:
    """Process-pool size for sweep-backed benchmarks.

    Override with ``REPRO_BENCH_WORKERS`` (1 = in-process serial path);
    results are identical at any worker count, only wall time changes.
    """
    return max(1, int(os.environ.get("REPRO_BENCH_WORKERS", default)))


def sweep_cache():
    """Run-cache setting for sweep-backed benchmarks.

    Off by default — a cache hit would make the timed numbers meaningless —
    but ``REPRO_BENCH_CACHE=1`` enables ``.sweep_cache/`` reuse for quick
    artifact regeneration after an interrupted run.
    """
    return ".sweep_cache" if os.environ.get("REPRO_BENCH_CACHE") == "1" else None


def emit(text: str) -> None:
    """Queue a line of reproduced-artifact output (also printed live when
    capture is off, e.g. with -s)."""
    _EMITTED.append(text)
    print(text)


@pytest.fixture(scope="session")
def report_sink():
    return emit


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    if not _EMITTED:
        return
    terminalreporter.write_line("")
    terminalreporter.write_line("=" * 72)
    terminalreporter.write_line("reproduced paper artifacts (tables & figure series)")
    terminalreporter.write_line("=" * 72)
    for line in _EMITTED:
        terminalreporter.write_line(line)
