"""Figure 1 — average queuing time & network latency under DoS attacks.

Regenerates both panels' series (queuing and latency vs 0..4 attackers) and
benchmarks the single-attacker realtime run as the representative kernel.

Paper shape: queuing 5 µs → ~100 µs (realtime) / ~350 µs (best-effort),
network latency nearly flat, best-effort worse than realtime.
"""

import pytest

from repro.experiments.fig1_dos import fig1_config, format_fig1, run_fig1
from repro.sim.runner import run_simulation

from benchmarks.conftest import emit

SIM_US = 1500.0


@pytest.mark.parametrize("panel", ["realtime", "best_effort"])
def test_fig1_panel(panel, benchmark):
    points = run_fig1(panel, attacker_counts=(0, 1, 2, 3, 4), sim_time_us=SIM_US)
    emit("")
    emit(format_fig1(panel, points))

    # paper-shape assertions on the full series
    assert points[-1].queuing_us > 5 * max(points[0].queuing_us, 1.0)
    growth_lat = points[-1].network_us - points[0].network_us
    growth_q = points[-1].queuing_us - points[0].queuing_us
    assert growth_lat < growth_q

    # benchmark: one representative bar (1 attacker, shorter horizon)
    cfg = fig1_config(panel, attackers=1, sim_time_us=300.0)
    benchmark.pedantic(lambda: run_simulation(cfg), rounds=2, iterations=1)


def test_fig1_best_effort_worse_than_realtime(benchmark):
    rt = run_fig1("realtime", attacker_counts=(4,), sim_time_us=SIM_US)[0]
    be = benchmark.pedantic(
        lambda: run_fig1("best_effort", attacker_counts=(4,), sim_time_us=SIM_US)[0],
        rounds=1,
        iterations=1,
    )
    emit("")
    emit(
        f"Fig 1 cross-panel: 4 attackers -> realtime queuing {rt.queuing_us:.1f} us, "
        f"best-effort queuing {be.queuing_us:.1f} us (paper: ~100 vs ~350)"
    )
    assert be.queuing_us > rt.queuing_us
