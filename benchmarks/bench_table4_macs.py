"""Table 4 — time & forgery complexity of the authentication candidates.

Prints the paper's normalized table and pytest-benchmarks each of this
repo's real implementations on an MTU-sized message, asserting the grouping
the paper's argument needs (CRC/UMAC class ≫ HMACs; MD5 > SHA1).
"""

import pytest

from repro.crypto.crc32 import crc32
from repro.crypto.hmac import hmac_md5, hmac_sha1
from repro.crypto.pmac import PMAC
from repro.crypto.stream import stream_mac
from repro.crypto.umac import UMAC
from repro.experiments.table4_macs import format_table4, run_table4

from benchmarks.conftest import emit

MTU_MESSAGE = bytes(range(256)) * 5  # 1280 B ≈ one MTU frame w/ headers
KEY = b"0123456789abcdef"
_UMAC = UMAC(KEY)
_PMAC = PMAC(KEY)

CANDIDATES = {
    "crc": lambda: crc32(MTU_MESSAGE),
    "umac": lambda: _UMAC.hash(MTU_MESSAGE),
    "hmac-md5": lambda: hmac_md5(KEY, MTU_MESSAGE),
    "hmac-sha1": lambda: hmac_sha1(KEY, MTU_MESSAGE),
    "pmac": lambda: _PMAC.tag(MTU_MESSAGE),
    "stream": lambda: stream_mac(KEY, MTU_MESSAGE, 1),
}


def test_table4_published_numbers(benchmark):
    rows = benchmark.pedantic(lambda: run_table4(measure=True), rounds=1, iterations=1)
    emit("")
    emit(format_table4(rows))
    by_name = {r.algorithm: r for r in rows}
    assert by_name["CRC"].gbps_at_350mhz == pytest.approx(11.2, abs=0.01)
    assert by_name["UMAC-2/4"].gbps_at_350mhz == pytest.approx(4.0, abs=0.01)
    assert by_name["HMAC-MD5"].gbps_at_350mhz == pytest.approx(0.53, abs=0.005)
    assert by_name["HMAC-SHA1"].gbps_at_350mhz == pytest.approx(0.22, abs=0.005)


@pytest.mark.parametrize("name", sorted(CANDIDATES))
def test_mac_throughput(name, benchmark):
    benchmark(CANDIDATES[name])


def test_python_ordering_matches_paper_grouping(benchmark):
    import time

    def measure():
        out = {}
        for name, fn in CANDIDATES.items():
            fn()
            t0 = time.perf_counter()
            for _ in range(10):
                fn()
            out[name] = len(MTU_MESSAGE) * 10 / (time.perf_counter() - t0) / 1e6
        return out

    speeds = benchmark.pedantic(measure, rounds=1, iterations=1)
    emit("")
    emit("Table 4 (measured, pure Python, MB/s): "
         + ", ".join(f"{k}={v:.1f}" for k, v in sorted(speeds.items())))
    assert speeds["crc"] > speeds["hmac-md5"] > speeds["hmac-sha1"]
    assert speeds["umac"] > speeds["hmac-md5"]
