"""Figure 6 — message authentication overhead with key initialization.

Prints the No-Key vs With-Key (UMAC + QP-level keys) grouped rows at
40-70% input load and asserts the paper's claims: overhead is marginal,
standard deviation grows with load, and partition-level key management has
zero steady-state exchange cost.
"""

from repro.experiments.fig6_auth import fig6_config, format_fig6, run_fig6
from repro.sim.runner import run_simulation

from benchmarks.conftest import emit, sweep_cache, sweep_workers

SIM_US = 2500.0


def test_fig6_rows(benchmark):
    from repro.analysis.charts import sweep_progress_chart

    events = []
    points = benchmark.pedantic(
        lambda: run_fig6(
            sim_time_us=SIM_US,
            workers=sweep_workers(),
            cache=sweep_cache(),
            progress=events.append,
        ),
        rounds=1,
        iterations=1,
    )
    emit("")
    emit(format_fig6(points))
    emit("")
    emit(sweep_progress_chart(events, title=f"Fig 6 sweep ({sweep_workers()} workers)"))

    by = {(p.input_load, p.with_key): p for p in points}
    for load in (0.4, 0.5, 0.6, 0.7):
        no, yes = by[(load, False)], by[(load, True)]
        no_total = no.queuing_us + no.network_us
        yes_total = yes.queuing_us + yes.network_us
        # "authentication functions decrease performance insignificantly"
        assert yes_total < no_total * 1.2 + 1.0
        assert yes.key_exchanges > 0
    # variance grows with load (paper: sd ~4-8 at 40-50%, larger at 60-70%)
    assert by[(0.7, True)].queuing_std_us > by[(0.4, True)].queuing_std_us


def test_fig6_partition_level_zero_exchange(benchmark):
    pts = benchmark.pedantic(
        lambda: run_fig6(input_loads=(0.4,), sim_time_us=800.0, keymgmt="partition"),
        rounds=1,
        iterations=1,
    )
    keyed = [p for p in pts if p.with_key][0]
    emit("")
    emit(
        "Fig 6 (partition-level): key exchanges in steady state = "
        f"{keyed.key_exchanges} (paper: 'Key distribution overhead is virtually zero')"
    )
    assert keyed.key_exchanges == 0


def test_fig6_single_point_kernel(benchmark):
    cfg = fig6_config(True, 0.5, sim_time_us=600.0)
    report = benchmark.pedantic(lambda: run_simulation(cfg), rounds=2, iterations=1)
    assert report.drops.get("auth", 0) == 0
