"""Table 1 — IBA simulation testbed parameters.

Prints the testbed table and benchmarks fabric construction (the cost of
standing up the 16-node mesh of 5-port switches)."""

from repro.iba.topology import build_mesh
from repro.sim.config import SimConfig
from repro.sim.engine import Engine
from repro.sim.metrics import MetricsCollector

from benchmarks.conftest import emit


def test_table1_parameters(benchmark):
    cfg = SimConfig()
    # the four Table 1 rows, exactly
    assert cfg.link_bandwidth_gbps == 2.5
    assert cfg.ports_per_switch == 5
    assert cfg.num_vls == 16
    assert cfg.mtu_bytes == 1024

    def build():
        return build_mesh(Engine(), SimConfig(), MetricsCollector())

    fabric = benchmark(build)
    assert len(fabric.switches) == 16 and len(fabric.hcas) == 16

    emit("")
    emit("Table 1 — IBA simulation testbed parameters")
    emit(f"{'Physical Link Bandwidth':<34} {cfg.link_bandwidth_gbps} Gbps")
    emit(f"{'Number of Physical Links':<34} {cfg.ports_per_switch}")
    emit(f"{'Number of VLs/Physical Link':<34} {cfg.num_vls}")
    emit(f"{'Realtime, Best-effort MTU':<34} {cfg.mtu_bytes} Bytes")
    emit(f"(16-node {cfg.mesh_width}x{cfg.mesh_height} mesh, byte time "
         f"{cfg.byte_time_ps} ps)")
