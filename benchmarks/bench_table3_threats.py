"""Table 3 — IBA key vulnerability matrix, executed.

Runs every captured-key attack against stock IBA, the partition-level-keyed
fabric, and the QP-level-keyed fabric; prints the verdict table."""

from repro.core.threats import format_matrix, run_threat_matrix

from benchmarks.conftest import emit


def test_table3_threat_matrix(benchmark):
    matrix = benchmark.pedantic(run_threat_matrix, rounds=1, iterations=1)
    emit("")
    emit(format_matrix(matrix))
    assert all(o.succeeded_stock for o in matrix)
    assert not any(o.succeeded_partition_auth for o in matrix)
    assert not any(o.succeeded_qp_auth for o in matrix)
