"""Ablation — Section 7's partial-digest speed/strength trade-off.

"The idea is to digest a small part of the message to make the
authentication tag.  This will increase forgery probability, but it will be
better than CRC."  Sweeps the coverage knob and prints digested bytes,
measured throughput, and the modelled forgery probability side by side.
"""

import time

from repro.core.auth import auth_function_for
from repro.core.fastmac import PartialDigestFunction
from repro.sim.config import AuthMode

from benchmarks.conftest import emit

MESSAGE = bytes(i & 0xFF for i in range(1024 + 34))  # one MTU frame
KEY = b"0123456789abcdef"
COVERAGES = (0.25, 0.5, 0.75, 1.0)


def test_ablation_partial_digest(benchmark):
    umac = auth_function_for(AuthMode.UMAC)

    def sweep():
        rows = []
        for cov in COVERAGES:
            f = PartialDigestFunction(umac, cov)
            f.compute(KEY, MESSAGE, 1)  # warm
            t0 = time.perf_counter()
            for n in range(60):
                f.compute(KEY, MESSAGE, n)
            elapsed = time.perf_counter() - t0
            rows.append(
                (
                    cov,
                    f.covered_fraction(MESSAGE),
                    len(f.select(MESSAGE)),
                    len(MESSAGE) * 60 / elapsed / 1e6,
                    f.forgery_probability(MESSAGE),
                )
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    emit("")
    emit("Ablation — partial-digest MAC (Section 7 trade-off), UMAC inner")
    emit(f"{'target cov':>11} {'actual':>8} {'digested B':>11} {'MB/s':>8} {'forgery prob':>13}")
    for cov, actual, nbytes, mbps, forgery in rows:
        emit(f"{cov:>11.0%} {actual:>8.0%} {nbytes:>11} {mbps:>8.1f} {forgery:>13.3g}")

    # strength falls monotonically as coverage falls; all beat CRC's 1.0
    forgeries = [r[4] for r in rows]
    assert forgeries == sorted(forgeries, reverse=True)
    assert all(f < 1.0 for f in forgeries)
    # fewer digested bytes at lower coverage
    assert rows[0][2] < rows[-1][2]
