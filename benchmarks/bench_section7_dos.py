"""Section 7's residual DoS attacks — "the following attacks are still
possible in IBA":

* **valid-P_Key flood** — "Since this attack uses a valid P_Key, any
  ingress filtering is useless": SIF filters nothing; packets die at the
  Q_Key check after crossing the fabric.
* **SM trap flood** — "the attacker can dump management packets to slow
  down the SM": the SM's finite trap queue overflows and drops legitimate
  notifications.
* **replay** — defeated by the nonce extension; quantified here with the
  replay-protection flag on and off.
"""

from repro.sim.config import EnforcementMode, SimConfig
from repro.sim.sweep import Sweep

from benchmarks.conftest import emit, sweep_cache, sweep_workers


def test_valid_pkey_flood_defeats_ingress_filtering(benchmark):
    base = SimConfig(
        sim_time_us=800.0, seed=7, num_attackers=1,
        enforcement=EnforcementMode.SIF,
        best_effort_load=0.3, keep_samples=False,
    )
    sweep = Sweep(base, {"attack_valid_pkey": [False, True]}, seeds=(7,))

    points = benchmark.pedantic(
        lambda: sweep.run(workers=sweep_workers(), cache=sweep_cache()),
        rounds=1,
        iterations=1,
    )
    invalid_r, valid_r = (p.reports[0] for p in points)
    emit("")
    emit("Section 7 — valid-P_Key flood vs SIF")
    emit(f"  random P_Keys: {invalid_r.switch_filtered} filtered at ingress, "
         f"{invalid_r.drops.get('pkey', 0)} leaked to HCAs")
    emit(f"  valid P_Key:   {valid_r.switch_filtered} filtered at ingress, "
         f"{valid_r.drops.get('qkey', 0)} crossed the fabric to die at Q_Key checks")
    assert invalid_r.switch_filtered > 0
    assert valid_r.switch_filtered == 0  # "any ingress filtering is useless"
    assert valid_r.drops.get("qkey", 0) > 0
    assert valid_r.sif_activations == 0


def test_sm_trap_flood(benchmark):
    from repro.core.attacks import SMTrapFlooder
    from repro.iba.subnet_manager import SubnetManager
    from repro.iba.types import LID
    from repro.sim.engine import Engine
    from repro.sim.rng import RngStreams

    def run():
        engine = Engine()
        sm = SubnetManager(engine, trap_latency_us=1.0, processing_us=10.0, queue_limit=16)
        flooder = SMTrapFlooder(engine, sm, LID(4), rate_per_us=0.5,
                                duration_us=1000.0, rng=RngStreams(0).get("f"))
        flooder.start()
        engine.run()
        return sm, flooder

    sm, flooder = benchmark.pedantic(run, rounds=1, iterations=1)
    emit("")
    emit("Section 7 — SM trap flood")
    emit(f"  {flooder.sent} bogus traps sent; SM processed {sm.traps_processed}, "
         f"dropped {sm.traps_dropped} (queue limit {sm.queue_limit})")
    assert sm.traps_dropped > 0


def test_replay_attack_and_nonce_defence(benchmark):
    import copy

    from repro.core.attacks import inject_raw
    from repro.sim.config import AuthMode, KeyMgmtMode
    from repro.sim.engine import PS_PER_US
    from repro.sim.runner import build_experiment
    from repro.sim.traffic import make_ud_packet
    from repro.iba.types import TrafficClass

    def run(protected):
        cfg = SimConfig(
            sim_time_us=400.0, seed=5,
            enable_realtime=False, enable_best_effort=False,
            auth=AuthMode.UMAC, keymgmt=KeyMgmtMode.PARTITION,
            replay_protection=protected,
        )
        engine, fabric, _, _, _, _ = build_experiment(cfg)
        members = sorted(fabric.sm.partitions[1])
        a, b = members[0], members[1]
        hca_a, hca_b = fabric.hca(a), fabric.hca(b)
        qp_a = next(iter(hca_a.qps.values()))
        qp_b = next(iter(hca_b.qps.values()))
        pkt = make_ud_packet(hca_a, qp_a, hca_b.lid, qp_b.qpn, qp_b.qkey,
                             qp_a.pkey, TrafficClass.BEST_EFFORT, cfg.mtu_bytes)
        hca_a.submit(pkt)
        engine.run(until=round(100 * PS_PER_US))
        for _ in range(3):  # captured packet replayed three times
            inject_raw(hca_a, copy.copy(pkt))
        engine.run(until=round(300 * PS_PER_US))
        return hca_b

    unprotected = run(False)
    protected = benchmark.pedantic(lambda: run(True), rounds=1, iterations=1)
    emit("")
    emit("Section 7 — replay attack")
    emit(f"  without nonce check: victim accepted {unprotected.delivered} copies "
         "(valid tag every time)")
    emit(f"  with nonce check:    victim accepted {protected.delivered}, "
         f"rejected {protected.replay_drops} replays")
    assert unprotected.delivered == 4
    assert protected.delivered == 1
    assert protected.replay_drops == 3
